//! Out-of-core CSR-Adaptive SpMV on Northup (paper §IV-C, Fig. 5).
//!
//! The CSR arrays (`row_ptr`, `col_id`, `data`) live on storage; the matrix
//! is divided in the row dimension into shards ("the matrix is divided into
//! four chunks in row-dimension to load into DRAM"). Per shard the runtime
//!
//! 1. loads the three array slices (three variable-sized file reads — the
//!    "variable buffer sizes" that give CSR-Adaptive worse I/O than
//!    HotSpot's regular blocks, §V-B),
//! 2. repacks + re-bins the rows on the CPU (the binning work the paper's
//!    breakdown charges to the CPU, §V-C),
//! 3. runs the adaptive kernels on the GPU, and
//! 4. writes the result segment of `b` back to storage.
//!
//! The dense vector `x` is staged once and stays resident ("one requirement
//! for SpMV is the fastest memory has to be big enough to hold the
//! vector").

use crate::calibration::{
    model_for, spmv_dgpu_model, spmv_gpu_model, SPMV_CHUNKS, SPMV_IO_EFFICIENCY,
    SPMV_NORTHUP_BIN_FACTOR, SPMV_REPACK_BW,
};
use crate::report::AppRun;
use northup::{BufferHandle, ExecMode, NodeId, ProcKind, Result, Runtime, Tree};
use northup_kernels::{binning_time, bytes_to_f32s, f32s_to_bytes, rel_error, spmv_adaptive};
use northup_sim::SimDur;
use northup_sparse::{bin_rows, partition_even_rows, BinningParams, Csr, PaperSpmvShape};

/// The SpMV input: a real matrix (Real mode) or paper-scale shape
/// parameters (Modeled mode).
#[derive(Debug, Clone)]
pub enum SpmvInput {
    /// A concrete CSR matrix (Real mode).
    Matrix(Csr),
    /// Shape-only description for paper-scale modeled runs.
    Shape(PaperSpmvShape),
}

impl SpmvInput {
    /// Paper-scale input (§IV-C: 16M rows, 4 chunks).
    pub fn paper() -> Self {
        SpmvInput::Shape(PaperSpmvShape {
            rows: crate::calibration::paper::SPMV_ROWS,
            mean_nnz_per_row: crate::calibration::paper::SPMV_NNZ_PER_ROW,
            chunks: SPMV_CHUNKS,
        })
    }

    /// Rows of the matrix.
    pub fn rows(&self) -> u64 {
        match self {
            SpmvInput::Matrix(m) => m.rows as u64,
            SpmvInput::Shape(s) => s.rows,
        }
    }

    /// Stored entries.
    pub fn nnz(&self) -> u64 {
        match self {
            SpmvInput::Matrix(m) => m.nnz() as u64,
            SpmvInput::Shape(s) => s.nnz(),
        }
    }
}

/// Per-shard byte geometry (row_ptr slice, col slice, val slice, y segment).
#[derive(Debug, Clone, Copy)]
struct ShardGeom {
    row_start: u64,
    rows: u64,
    nnz_start: u64,
    nnz: u64,
}

impl ShardGeom {
    fn rp_bytes(&self) -> u64 {
        (self.rows + 1) * 4
    }
    fn ci_bytes(&self) -> u64 {
        self.nnz * 4
    }
    fn va_bytes(&self) -> u64 {
        self.nnz * 4
    }
    fn payload(&self) -> u64 {
        self.rp_bytes() + self.ci_bytes() + self.va_bytes()
    }
    fn y_bytes(&self) -> u64 {
        self.rows * 4
    }
}

fn shard_geometry(input: &SpmvInput) -> Vec<ShardGeom> {
    match input {
        SpmvInput::Matrix(m) => partition_even_rows(m, SPMV_CHUNKS)
            .into_iter()
            .map(|s| ShardGeom {
                row_start: s.row_start as u64,
                rows: s.rows() as u64,
                nnz_start: s.nnz_start as u64,
                nnz: s.nnz() as u64,
            })
            .collect(),
        SpmvInput::Shape(s) => {
            let k = s.chunks as u64;
            (0..k)
                .map(|i| {
                    let row_start = s.rows * i / k;
                    let row_end = s.rows * (i + 1) / k;
                    let nnz_start = s.nnz() * i / k;
                    let nnz_end = s.nnz() * (i + 1) / k;
                    ShardGeom {
                        row_start,
                        rows: row_end - row_start,
                        nnz_start,
                        nnz: nnz_end - nnz_start,
                    }
                })
                .collect()
        }
    }
}

fn gpu_spmv_model(name: &str) -> northup_kernels::ProcModel {
    if name.starts_with("apu") {
        spmv_gpu_model()
    } else {
        spmv_dgpu_model()
    }
}

/// In-memory CSR-Adaptive baseline: matrix resident in DRAM, one binning
/// pass on the CPU, adaptive kernels on the GPU.
pub fn spmv_in_memory(input: &SpmvInput, mode: ExecMode) -> Result<AppRun> {
    let tree = northup::presets::in_memory();
    let rt = Runtime::new(tree, mode)?;
    let root = rt.root_ctx();
    let rows = input.rows();
    let nnz = input.nnz();
    let payload = (rows + 1) * 4 + nnz * 8;
    // analyze:allow(lease-discipline): matrix and vectors live for the whole run; the run's Runtime reclaims them on drop
    let mat = root.alloc(payload)?;
    let x = root.alloc(rows * 4)?;
    let y = root.alloc(rows * 4)?;

    let cpu = root
        .procs()
        .iter()
        .find(|p| p.kind == ProcKind::Cpu)
        .expect("CPU present");
    let gpu = root
        .procs()
        .iter()
        .find(|p| p.kind == ProcKind::Gpu)
        .expect("GPU present");
    let _ = model_for(&cpu.name); // CPU model resolvable (binning_time is global)

    root.compute(ProcKind::Cpu, binning_time(rows), &[mat], &[mat], "binning")?;
    let dur = gpu_spmv_model(&gpu.name).spmv_time(rows, nnz);
    root.compute(ProcKind::Gpu, dur, &[mat, x], &[y], "csr-adaptive")?;

    let mut checksum = None;
    let mut verified = None;
    if let (ExecMode::Real, SpmvInput::Matrix(m)) = (mode, input) {
        let xv: Vec<f32> = (0..m.cols).map(|i| ((i % 11) as f32 - 5.0) * 0.3).collect();
        let blocks = bin_rows(m, BinningParams::default());
        let mut yv = vec![0.0f32; m.rows];
        spmv_adaptive(m, &blocks, &xv, &mut yv);
        rt.write_slice(y, 0, &f32s_to_bytes(&yv))?;
        let mut oracle = vec![0.0f32; m.rows];
        m.spmv_reference(&xv, &mut oracle);
        verified = Some(rel_error(&oracle, &yv) < 1e-4);
        checksum = Some(yv.iter().map(|&v| v as f64).sum());
    }

    Ok(AppRun {
        name: "spmv/in-memory".into(),
        report: rt.report(),
        verified,
        checksum,
    })
}

/// Out-of-core Northup CSR-Adaptive over a chain topology.
pub fn spmv_northup(input: &SpmvInput, tree: Tree, mode: ExecMode) -> Result<AppRun> {
    let rt = Runtime::new(tree, mode)?;
    spmv_northup_on(&rt, input)
}

/// Like [`spmv_northup`], on a caller-provided runtime.
pub fn spmv_northup_on(rt: &Runtime, input: &SpmvInput) -> Result<AppRun> {
    let mode = rt.mode();
    let rows = input.rows();
    let nnz = input.nnz();
    let geoms = shard_geometry(input);

    let root = rt.tree().root();
    // Storage layout: row_ptr | col_id | data | x | y as separate regions.
    let rp_file = rt.alloc((rows + 1) * 4, root)?;
    let ci_file = rt.alloc(nnz * 4, root)?;
    let va_file = rt.alloc(nnz * 4, root)?;
    let x_file = rt.alloc(rows * 4, root)?;
    let y_file = rt.alloc(rows * 4, root)?;

    // Preprocessing: write the real matrix (Real mode only).
    let mut x_host: Vec<f32> = Vec::new();
    if let (ExecMode::Real, SpmvInput::Matrix(m)) = (mode, input) {
        let rp: Vec<u8> = m
            .row_ptr
            .iter()
            .flat_map(|&v| (v as u32).to_le_bytes())
            .collect();
        rt.write_slice(rp_file, 0, &rp)?;
        let ci: Vec<u8> = m.col_idx.iter().flat_map(|&v| v.to_le_bytes()).collect();
        rt.write_slice(ci_file, 0, &ci)?;
        rt.write_slice(va_file, 0, &f32s_to_bytes(&m.vals))?;
        x_host = (0..m.cols).map(|i| ((i % 11) as f32 - 5.0) * 0.3).collect();
        rt.write_slice(x_file, 0, &f32s_to_bytes(&x_host))?;
    }

    let stage_node = *rt.tree().children(root).first().expect("staging level");
    // The x vector stays resident at the staging level.
    let x_stage = rt.alloc(rows * 4, stage_node)?;
    rt.move_data(x_stage, 0, x_file, 0, rows * 4)?;

    // Deeper chain for discrete-GPU trees: x also moves to the leaf once.
    let mut chain: Vec<NodeId> = Vec::new();
    {
        let mut cur = stage_node;
        while let Some(&c) = rt.tree().children(cur).first() {
            chain.push(c);
            cur = c;
        }
    }
    let mut x_leaf = x_stage;
    for &node in &chain {
        let xb = rt.alloc(rows * 4, node)?;
        rt.move_data(xb, 0, x_leaf, 0, rows * 4)?;
        x_leaf = xb;
    }
    let leaf_node = chain.last().copied().unwrap_or(stage_node);
    let cpu_node = stage_node; // CPU is at the staging DRAM in both presets
    let gpu = rt
        .tree()
        .node(leaf_node)
        .procs
        .iter()
        .find(|p| p.kind == ProcKind::Gpu)
        .expect("leaf has a GPU");
    let gpu_model = gpu_spmv_model(&gpu.name);

    // Stage one shard: per-shard buffers (Listing 3's setup_buffer) and the
    // three variable-sized array reads.
    let stage_shard = |g: &ShardGeom| -> Result<[BufferHandle; 4]> {
        let rp_s = rt.alloc(g.rp_bytes(), stage_node)?;
        let ci_s = rt.alloc(g.ci_bytes(), stage_node)?;
        let va_s = rt.alloc(g.va_bytes(), stage_node)?;
        let y_s = rt.alloc(g.y_bytes(), stage_node)?;
        rt.move_data(rp_s, 0, rp_file, g.row_start * 4, g.rp_bytes())?;
        rt.move_data(ci_s, 0, ci_file, g.nnz_start * 4, g.ci_bytes())?;
        rt.move_data(va_s, 0, va_file, g.nnz_start * 4, g.va_bytes())?;
        Ok([rp_s, ci_s, va_s, y_s])
    };

    // Unlike matmul/hotspot, shards are NOT prefetched ahead of the current
    // shard's processing: a sub-shard's extent is data-dependent ("the
    // portion of data constituting a sub-shard is determined with
    // row_ptr[start] and row_ptr[end]", §IV-C), so the runtime cannot size
    // and issue the next shard's variable-length reads until the current
    // pass has examined row_ptr. This is exactly why CSR-Adaptive gets
    // less I/O overlap than HotSpot's regular blocks in the paper (§V-B).
    let mut checksum = 0.0f64;
    for (ci_idx, g) in geoms.iter().enumerate() {
        let [rp_s, ci_s, va_s, y_s] = stage_shard(g)?;

        // CPU: repack (rebase offsets) + per-shard re-binning.
        let repack = SimDur::from_secs_f64(g.payload() as f64 / SPMV_REPACK_BW);
        rt.charge_compute(
            cpu_node,
            ProcKind::Cpu,
            repack,
            &[rp_s, ci_s, va_s],
            &[rp_s, ci_s, va_s],
            &format!("repack shard {ci_idx}"),
        )?;
        let bin = binning_time(g.rows) * SPMV_NORTHUP_BIN_FACTOR;
        rt.charge_compute(
            cpu_node,
            ProcKind::Cpu,
            bin,
            &[rp_s],
            &[rp_s],
            &format!("bin shard {ci_idx}"),
        )?;

        // Move shard down the deeper chain (device transfers on 3-level).
        let (mut rp_c, mut ci_c, mut va_c, mut y_c) = (rp_s, ci_s, va_s, y_s);
        let mut leaf_bufs: Vec<[BufferHandle; 4]> = Vec::new();
        for &node in &chain {
            let rp2 = rt.alloc(g.rp_bytes(), node)?;
            let ci2 = rt.alloc(g.ci_bytes(), node)?;
            let va2 = rt.alloc(g.va_bytes(), node)?;
            let y2 = rt.alloc(g.y_bytes(), node)?;
            rt.move_data(rp2, 0, rp_c, 0, g.rp_bytes())?;
            rt.move_data(ci2, 0, ci_c, 0, g.ci_bytes())?;
            rt.move_data(va2, 0, va_c, 0, g.va_bytes())?;
            leaf_bufs.push([rp2, ci2, va2, y2]);
            rp_c = rp2;
            ci_c = ci2;
            va_c = va2;
            y_c = y2;
        }

        // GPU: adaptive kernels over the shard.
        let dur = gpu_model.spmv_time(g.rows, g.nnz);
        rt.charge_compute(
            leaf_node,
            ProcKind::Gpu,
            dur,
            &[rp_c, ci_c, va_c, x_leaf],
            &[y_c],
            &format!("spmv shard {ci_idx}"),
        )?;

        // Real kernel execution.
        if let (ExecMode::Real, SpmvInput::Matrix(m)) = (mode, input) {
            let sub = m.slice_rows(g.row_start as usize, (g.row_start + g.rows) as usize);
            let blocks = bin_rows(&sub, BinningParams::default());
            let mut yv = vec![0.0f32; sub.rows];
            spmv_adaptive(&sub, &blocks, &x_host, &mut yv);
            checksum += yv.iter().map(|&v| v as f64).sum::<f64>();
            rt.write_slice(y_c, 0, &f32s_to_bytes(&yv))?;
        }

        // Result segment back up the chain and out to storage.
        let mut cur_y = y_c;
        for bufs in leaf_bufs.iter().rev().skip(1) {
            rt.move_data(bufs[3], 0, cur_y, 0, g.y_bytes())?;
            cur_y = bufs[3];
        }
        if !leaf_bufs.is_empty() {
            rt.move_data(y_s, 0, cur_y, 0, g.y_bytes())?;
            cur_y = y_s;
        }
        rt.move_data(y_file, g.row_start * 4, cur_y, 0, g.y_bytes())?;

        for bufs in leaf_bufs {
            for b in bufs {
                rt.release(b)?;
            }
        }
        rt.release(rp_s)?;
        rt.release(ci_s)?;
        rt.release(va_s)?;
        rt.release(y_s)?;
    }

    let mut verified = None;
    let mut csum = None;
    if let (ExecMode::Real, SpmvInput::Matrix(m)) = (mode, input) {
        let mut bytes = vec![0u8; (rows * 4) as usize];
        rt.read_slice(y_file, 0, &mut bytes)?;
        let got = bytes_to_f32s(&bytes);
        let mut oracle = vec![0.0f32; m.rows];
        m.spmv_reference(&x_host, &mut oracle);
        verified = Some(rel_error(&oracle, &got) < 1e-4);
        csum = Some(checksum);
    }

    Ok(AppRun {
        name: "spmv/northup".into(),
        report: rt.report(),
        verified,
        checksum: csum,
    })
}

/// Power iteration on an out-of-core matrix: repeated `y = A x` passes with
/// host-side normalization between them (the dominant-eigenvalue workload
/// that motivates out-of-core SpMV — each iteration re-streams the matrix,
/// §VI's low-reuse case). Returns the dominant eigenvalue estimate and the
/// run. Real mode only (needs the actual matrix).
pub fn power_iteration_northup(
    m: &Csr,
    iterations: usize,
    tree: northup::Tree,
) -> Result<(f64, AppRun)> {
    assert_eq!(m.rows, m.cols, "power iteration needs a square matrix");
    let rt = Runtime::new(tree, ExecMode::Real)?;
    let rows = m.rows as u64;
    let geoms = shard_geometry(&SpmvInput::Matrix(m.clone()));

    let root = rt.tree().root();
    let rp_file = rt.alloc((rows + 1) * 4, root)?;
    let ci_file = rt.alloc(m.nnz() as u64 * 4, root)?;
    let va_file = rt.alloc(m.nnz() as u64 * 4, root)?;
    let rp: Vec<u8> = m
        .row_ptr
        .iter()
        .flat_map(|&v| (v as u32).to_le_bytes())
        .collect();
    rt.write_slice(rp_file, 0, &rp)?;
    let ci: Vec<u8> = m.col_idx.iter().flat_map(|&v| v.to_le_bytes()).collect();
    rt.write_slice(ci_file, 0, &ci)?;
    rt.write_slice(va_file, 0, &f32s_to_bytes(&m.vals))?;

    let stage_node = *rt.tree().children(root).first().expect("staging level");
    let cpu_node = stage_node;
    let gpu = rt
        .tree()
        .node(stage_node)
        .procs
        .iter()
        .find(|p| p.kind == ProcKind::Gpu)
        .expect("power iteration runs at an APU leaf");
    let gpu_model = gpu_spmv_model(&gpu.name);

    // x stays resident at the staging level across iterations; y is
    // produced there and becomes the next x after normalization.
    let x_stage = rt.alloc(rows * 4, stage_node)?;
    let y_stage = rt.alloc(rows * 4, stage_node)?;
    let mut x_host = vec![1.0f32 / (m.rows as f32).sqrt(); m.rows];
    rt.write_slice(x_stage, 0, &f32s_to_bytes(&x_host))?;

    let mut eigenvalue = 0.0f64;
    for it in 0..iterations {
        let mut y_host = vec![0.0f32; m.rows];
        for (idx, g) in geoms.iter().enumerate() {
            let [rp_s, ci_s, va_s, y_s] = {
                let rp_s = rt.alloc(g.rp_bytes(), stage_node)?;
                let ci_s = rt.alloc(g.ci_bytes(), stage_node)?;
                let va_s = rt.alloc(g.va_bytes(), stage_node)?;
                let y_s = rt.alloc(g.y_bytes(), stage_node)?;
                rt.move_data(rp_s, 0, rp_file, g.row_start * 4, g.rp_bytes())?;
                rt.move_data(ci_s, 0, ci_file, g.nnz_start * 4, g.ci_bytes())?;
                rt.move_data(va_s, 0, va_file, g.nnz_start * 4, g.va_bytes())?;
                [rp_s, ci_s, va_s, y_s]
            };
            let bin = binning_time(g.rows);
            rt.charge_compute(cpu_node, ProcKind::Cpu, bin, &[rp_s], &[rp_s], "bin")?;
            let dur = gpu_model.spmv_time(g.rows, g.nnz);
            rt.charge_compute(
                stage_node,
                ProcKind::Gpu,
                dur,
                &[rp_s, ci_s, va_s, x_stage],
                &[y_s],
                &format!("spmv it{it} shard{idx}"),
            )?;
            let sub = m.slice_rows(g.row_start as usize, (g.row_start + g.rows) as usize);
            let blocks = bin_rows(&sub, BinningParams::default());
            let mut yv = vec![0.0f32; sub.rows];
            spmv_adaptive(&sub, &blocks, &x_host, &mut yv);
            y_host[g.row_start as usize..(g.row_start + g.rows) as usize].copy_from_slice(&yv);
            rt.write_slice(y_s, 0, &f32s_to_bytes(&yv))?;
            rt.move_data(y_stage, g.row_start * 4, y_s, 0, g.y_bytes())?;
            for h in [rp_s, ci_s, va_s, y_s] {
                rt.release(h)?;
            }
        }
        // Rayleigh quotient and normalization on the CPU.
        let dot: f64 = x_host
            .iter()
            .zip(&y_host)
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        eigenvalue = dot;
        let norm = y_host
            .iter()
            .map(|&v| (v as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        let norm_dur = SimDur::from_secs_f64(rows as f64 * 4.0 / SPMV_REPACK_BW);
        rt.charge_compute(
            cpu_node,
            ProcKind::Cpu,
            norm_dur,
            &[y_stage],
            &[x_stage],
            "normalize",
        )?;
        for (x, &y) in x_host.iter_mut().zip(&y_host) {
            *x = (y as f64 / norm.max(1e-30)) as f32;
        }
        rt.write_slice(x_stage, 0, &f32s_to_bytes(&x_host))?;
    }

    Ok((
        eigenvalue,
        AppRun {
            name: "spmv/power-iteration".into(),
            report: rt.report(),
            verified: None,
            checksum: Some(eigenvalue),
        },
    ))
}

/// Degrade a storage device to CSR-Adaptive's effective bandwidth (see
/// [`SPMV_IO_EFFICIENCY`]).
pub fn spmv_storage(storage: northup_hw::DeviceSpec) -> northup_hw::DeviceSpec {
    storage.scaled_bandwidth(SPMV_IO_EFFICIENCY)
}

/// Run the Northup SpMV over the 2-level APU preset. The storage spec is
/// degraded by [`SPMV_IO_EFFICIENCY`] to model the variable-buffer I/O.
pub fn spmv_apu(
    input: &SpmvInput,
    storage: northup_hw::DeviceSpec,
    mode: ExecMode,
) -> Result<AppRun> {
    spmv_northup(
        input,
        northup::presets::apu_two_level(spmv_storage(storage)),
        mode,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use northup_hw::catalog;
    use northup_sparse::gen;

    fn small_matrix() -> Csr {
        gen::powerlaw(600, 600, 128, 0.9, 42)
    }

    #[test]
    fn northup_small_matches_reference() {
        let input = SpmvInput::Matrix(small_matrix());
        let run = spmv_apu(&input, catalog::ssd_hyperx_predator(), ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true));
    }

    #[test]
    fn northup_three_level_matches_reference() {
        let input = SpmvInput::Matrix(gen::banded(500, 3, 7));
        let tree = northup::presets::discrete_gpu_three_level(catalog::hdd_wd5000());
        let run = spmv_northup(&input, tree, ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true));
    }

    #[test]
    fn in_memory_baseline_verifies() {
        let input = SpmvInput::Matrix(small_matrix());
        let run = spmv_in_memory(&input, ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true));
    }

    #[test]
    fn paper_scale_slowdowns_have_the_right_ordering() {
        let input = SpmvInput::paper();
        let base = spmv_in_memory(&input, ExecMode::Modeled).unwrap();
        let ssd = spmv_apu(&input, catalog::ssd_hyperx_predator(), ExecMode::Modeled).unwrap();
        let hdd = spmv_apu(&input, catalog::hdd_wd5000(), ExecMode::Modeled).unwrap();
        let s_ssd = ssd.slowdown_vs(&base);
        let s_hdd = hdd.slowdown_vs(&base);
        assert!(s_ssd > 1.3, "spmv pays overheads on ssd: {s_ssd}");
        assert!(s_hdd > s_ssd, "disk worse than ssd");
    }

    #[test]
    fn power_iteration_finds_the_dominant_eigenvalue() {
        // A diagonally dominant symmetric matrix: diag(i+1) on 64x64 plus a
        // weak band; dominant eigenvalue is close to the largest diagonal.
        let n = 64usize;
        let mut triplets: Vec<(usize, u32, f32)> = Vec::new();
        for i in 0..n {
            triplets.push((i, i as u32, (i + 1) as f32));
            if i + 1 < n {
                triplets.push((i, (i + 1) as u32, 0.1));
                triplets.push((i + 1, i as u32, 0.1));
            }
        }
        let m = Csr::from_coo(n, n, triplets);
        let tree = northup::presets::apu_two_level(catalog::ssd_hyperx_predator());
        let (lambda, run) = power_iteration_northup(&m, 60, tree).unwrap();
        assert!(
            (lambda - 64.0).abs() < 0.5,
            "dominant eigenvalue ~64, got {lambda}"
        );
        // Each iteration re-streams the matrix: I/O grows with iterations.
        let io = run
            .report
            .io
            .iter()
            .find(|(name, _)| name == "hyperx-predator")
            .map(|(_, t)| t.read_ops)
            .unwrap();
        assert!(io >= 60 * 4 * 3, "re-streamed every iteration: {io} ops");
    }

    #[test]
    fn x_vector_stays_resident() {
        // Only one read of the x region regardless of chunk count.
        let input = SpmvInput::Matrix(small_matrix());
        let run = spmv_apu(&input, catalog::ssd_hyperx_predator(), ExecMode::Real).unwrap();
        let ssd_io = run
            .report
            .io
            .iter()
            .find(|(n, _)| n == "hyperx-predator")
            .map(|(_, t)| *t)
            .unwrap();
        // 3 reads per shard x 4 shards + 1 x read = 13 read ops.
        assert_eq!(ssd_io.read_ops, 13, "{ssd_io:?}");
        assert_eq!(ssd_io.write_ops, 4, "one y segment write per shard");
    }
}
