//! # northup-apps — the paper's case-study applications on Northup
//!
//! Each §IV application comes as an in-memory baseline plus a Northup
//! out-of-core version over any chain topology preset, with Real mode
//! (real bytes, results verified against oracles) and Modeled mode
//! (paper-scale virtual-time runs):
//!
//! * [`matmul`] — tiled dense matrix multiply with the §IV-A row-shard
//!   reuse optimization.
//! * [`hotspot`] — HotSpot-2D with packed borders generalized to exact
//!   trapezoid temporal blocking (§IV-B).
//! * [`spmv`] — CSR-Adaptive with nnz-aware shards, per-shard CPU
//!   re-binning, and variable-sized array I/O (§IV-C).
//! * [`balance`] — the §V-E CPU+GPU work-stealing leaf (Figs. 10/11).
//! * [`adaptive`] — §III-E profile-guided task-to-processor mapping.
//! * [`subtree`] — §V-E/§VII dynamic dispatch across asymmetric subtrees.
//! * [`reduce`] — out-of-core map/reduce on the generic chunk pipeline.
//! * [`layout`] — the §VI data-layout study: CSR→ELL transformation during
//!   migration, with the input-dependent crossover quantified.
//! * [`distributed`] — §VII distributed GEMM over the cluster preset, with
//!   a strong-scaling curve capped by the shared parallel file system.
//! * [`fleet`] — the federated driver: the same trace shapes replayed
//!   across N shard trees through the `northup-fleet` router, with
//!   tenant data affinity and cross-shard migration (DESIGN.md §11).
//! * [`calibration`] — every model knob, documented.
//! * [`report`] — run results and Fig.-6-style comparisons.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adaptive;
pub mod balance;
pub mod calibration;
pub mod distributed;
pub mod fleet;
pub mod host;
pub mod hotspot;
pub mod layout;
pub mod matmul;
pub mod reduce;
pub mod report;
pub mod service;
pub mod spmv;
pub mod subtree;

pub use adaptive::{adaptive_stencil_stream, AdaptiveMapper, AdaptiveOutcome, Policy};
pub use balance::{fig11_speedup, run_balanced, BalanceConfig, BalanceRun, LeafRates};
pub use distributed::{gemm_cluster, scaling_curve, DistGemmConfig};
pub use fleet::{fleet_trace, run_fleet, run_fleet_with, AFFINITY_PCT};
pub use host::when_real;
pub use hotspot::{
    hotspot_apu, hotspot_in_memory, hotspot_northup, hotspot_split_leaf, optimal_gpu_fraction,
    HotspotConfig,
};
pub use layout::{format_study, spmv_with_format, FormatRow, SpmvFormat};
pub use matmul::{matmul_apu, matmul_in_memory, matmul_northup, MatmulConfig};
pub use reduce::{map_northup, reduce_northup, ReduceOp, StreamConfig};
pub use report::AppRun;
pub use service::{
    job_profile, overload_slo, overload_trace, run_service, run_service_real,
    run_service_real_chaos, run_service_slo, run_service_with, service_estimate, synthetic_trace,
    trace_from_csv, trace_to_csv, OverloadConfig, RealJobRun, ServiceJobKind, ServiceRealRun,
    TraceConfig, TraceError, TraceSource, SERVICE_TENANTS, TRACE_CSV_HEADER,
};
pub use spmv::{spmv_apu, spmv_in_memory, spmv_northup, SpmvInput};
pub use subtree::{branches, run_batch, Branch, Dispatch, SubtreeOutcome};
