//! Multi-tenant service driver: replay a synthetic arrival trace of mixed
//! out-of-core jobs (GEMM, HotSpot, SpMV) through the `northup-sched`
//! admission-controlled scheduler.
//!
//! Each application's steady state is collapsed to the [`JobWork`] shape
//! the scheduler's co-simulation serves (per-chunk root read, link
//! staging, leaf compute, writeback), with capacity reservations derived
//! from the same blocking parameters the real out-of-core drivers use —
//! so a "GEMM tenant" holds the DRAM staging ring a real paper-scale
//! GEMM would hold.

use crate::calibration::paper;
use crate::calibration::GEMM_RING;
use northup::Tree;
use northup_sched::{
    staging_reservation, AdmissionPolicy, JobScheduler, JobSpec, JobWork, Priority, SchedReport,
    SchedulerConfig,
};
use northup_sim::{SimDur, SimTime};
use rand::{Rng, SeedableRng, StdRng};

/// The application mix a service-trace job can be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceJobKind {
    /// Paper-scale tiled dense GEMM (§IV-A), scaled down by `scale`.
    Gemm,
    /// HotSpot-2D with temporal blocking (§IV-B).
    Hotspot,
    /// CSR-Adaptive SpMV (§IV-C).
    Spmv,
}

impl ServiceJobKind {
    /// All kinds, in the round-robin order traces cycle through.
    pub const ALL: [ServiceJobKind; 3] = [
        ServiceJobKind::Gemm,
        ServiceJobKind::Hotspot,
        ServiceJobKind::Spmv,
    ];

    /// Short label used in job names and reports.
    pub fn label(self) -> &'static str {
        match self {
            ServiceJobKind::Gemm => "gemm",
            ServiceJobKind::Hotspot => "hotspot",
            ServiceJobKind::Spmv => "spmv",
        }
    }
}

/// Derive (reservation, per-chunk work) for one tenant of `kind` on
/// `tree`, scaled down from paper-scale by `1/scale` in linear dimension
/// (`scale ≥ 1`; larger ⇒ smaller jobs).
pub fn job_profile(kind: ServiceJobKind, tree: &Tree, scale: u64) -> (JobSpec, ServiceJobKind) {
    let scale = scale.max(1);
    let spec = match kind {
        ServiceJobKind::Gemm => {
            // One chunk = one block × block tile of C; the staging ring
            // holds `GEMM_RING` B-shards of the same size.
            let block = (paper::GEMM_BLOCK as u64 / scale).max(256);
            let n = (paper::GEMM_N as u64 / scale).max(block);
            let tile_bytes = block * block * 4;
            let chunks = ((n / block) * (n / block)) as u32;
            JobSpec::new(
                "gemm",
                staging_reservation(tree, GEMM_RING as u64 * tile_bytes),
                JobWork::new(chunks)
                    .read(tile_bytes)
                    .xfer(tile_bytes)
                    .compute(SimDur::from_micros(900))
                    .write(tile_bytes / 4),
            )
        }
        ServiceJobKind::Hotspot => {
            // One chunk = one trapezoid block per pass; double buffering.
            let block = (paper::HOTSPOT_BLOCK as u64 / scale).max(256);
            let n = (paper::HOTSPOT_N as u64 / scale).max(block);
            let tile_bytes = block * block * 4;
            let chunks = (2 * (n / block) * (n / block)) as u32;
            JobSpec::new(
                "hotspot",
                staging_reservation(tree, 2 * tile_bytes),
                JobWork::new(chunks)
                    .read(tile_bytes)
                    .xfer(tile_bytes)
                    .compute(SimDur::from_micros(400))
                    .write(tile_bytes),
            )
        }
        ServiceJobKind::Spmv => {
            // One chunk = one nnz-balanced CSR shard (values + indices +
            // the dense x gather); writeback is just the y slice.
            let rows = paper::SPMV_ROWS / scale;
            let nnz = (rows as f64 * paper::SPMV_NNZ_PER_ROW) as u64;
            let shard_bytes = (nnz * 8 + rows * 4) / crate::calibration::SPMV_CHUNKS as u64;
            JobSpec::new(
                "spmv",
                staging_reservation(tree, shard_bytes),
                JobWork::new(crate::calibration::SPMV_CHUNKS as u32)
                    .read(shard_bytes)
                    .xfer(shard_bytes)
                    .compute(SimDur::from_micros(250))
                    .write(rows * 4 / crate::calibration::SPMV_CHUNKS as u64),
            )
        }
    };
    (spec, kind)
}

/// Shape of a synthetic arrival trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of jobs.
    pub jobs: usize,
    /// RNG seed (same seed ⇒ same trace ⇒ same schedule).
    pub seed: u64,
    /// Mean inter-arrival gap in microseconds of virtual time; lower ⇒
    /// higher offered load.
    pub mean_gap_us: u64,
    /// Linear-dimension scale-down from paper-scale inputs.
    pub scale: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            jobs: 32,
            seed: 7,
            mean_gap_us: 2_000,
            scale: 16,
        }
    }
}

/// Generate a deterministic mixed-application arrival trace: kinds cycle
/// Gemm → Hotspot → SpMV, priorities and inter-arrival gaps are drawn
/// from the seeded RNG.
pub fn synthetic_trace(tree: &Tree, cfg: &TraceConfig) -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut at_us: u64 = 0;
    let mut trace = Vec::with_capacity(cfg.jobs);
    for i in 0..cfg.jobs {
        let kind = ServiceJobKind::ALL[i % ServiceJobKind::ALL.len()];
        let (mut spec, _) = job_profile(kind, tree, cfg.scale);
        spec.name = format!("{}-{i}", kind.label());
        spec.priority = match rng.gen_range(0..6u32) {
            0 => Priority::Interactive,
            1 | 2 => Priority::Batch,
            _ => Priority::Normal,
        };
        at_us += rng.gen_range(0..cfg.mean_gap_us.max(1) * 2);
        spec.arrival = SimTime::from_secs_f64(at_us as f64 * 1e-6);
        trace.push(spec);
    }
    trace
}

/// Replay `trace` through a [`JobScheduler`] with the given policy.
pub fn run_service(tree: &Tree, trace: Vec<JobSpec>, policy: AdmissionPolicy) -> SchedReport {
    let mut sched = JobScheduler::new(
        tree.clone(),
        SchedulerConfig {
            policy,
            ..SchedulerConfig::default()
        },
    );
    for spec in trace {
        sched.submit(spec);
    }
    sched.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use northup::presets;
    use northup_hw::catalog;
    use northup_sched::JobState;

    fn tree() -> Tree {
        presets::apu_two_level(catalog::ssd_hyperx_predator())
    }

    #[test]
    fn profiles_fit_the_apu_staging_level() {
        let tree = tree();
        let dram = tree.children(tree.root())[0];
        let budget = tree.node(dram).mem.capacity;
        for kind in ServiceJobKind::ALL {
            let (spec, _) = job_profile(kind, &tree, 16);
            assert!(
                spec.reservation.get(dram) > 0 && spec.reservation.get(dram) <= budget,
                "{:?} reservation must be admissible",
                kind
            );
            assert!(spec.work.chunks > 0);
        }
    }

    #[test]
    fn trace_is_deterministic_and_sorted_enough() {
        let tree = tree();
        let cfg = TraceConfig::default();
        let t1 = synthetic_trace(&tree, &cfg);
        let t2 = synthetic_trace(&tree, &cfg);
        assert_eq!(t1.len(), 32);
        for (a, b) in t1.iter().zip(t2.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.priority, b.priority);
        }
    }

    #[test]
    fn service_completes_mixed_trace_and_beats_fifo() {
        let tree = tree();
        let trace = synthetic_trace(&tree, &TraceConfig::default());
        let fair = run_service(&tree, trace.clone(), AdmissionPolicy::WeightedFair);
        let fifo = run_service(&tree, trace, AdmissionPolicy::Fifo);
        assert!(fair.all_terminal() && fifo.all_terminal());
        assert!(fair.count(JobState::Done) + fair.count(JobState::Rejected) == fair.jobs.len());
        assert!(
            fair.throughput >= fifo.throughput,
            "fair {:.2} jobs/s vs fifo {:.2} jobs/s",
            fair.throughput,
            fifo.throughput
        );
    }
}
