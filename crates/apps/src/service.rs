//! Multi-tenant service driver: replay an arrival trace of mixed
//! out-of-core jobs (GEMM, HotSpot, SpMV) through the `northup-sched`
//! admission-controlled scheduler — modeled or on real threads.
//!
//! Each application's steady state is collapsed to the [`JobWork`] shape
//! the scheduler's co-simulation serves (per-chunk root read, link
//! staging, leaf compute, writeback), with capacity reservations derived
//! from the same blocking parameters the real out-of-core drivers use —
//! so a "GEMM tenant" holds the DRAM staging ring a real paper-scale
//! GEMM would hold.
//!
//! Traces come from a [`TraceSource`]: generated
//! ([`synthetic_trace`], seeded and deterministic) or imported from CSV
//! ([`trace_from_csv`]; a checked-in sample lives at
//! `crates/apps/data/service_trace.csv`). [`run_service`] replays a trace
//! in virtual time only; [`run_service_real`] additionally executes every
//! admitted job's chunk chain on a shared `northup-exec` thread pool
//! through [`RealFabric`], with each job's admitted reservation installed
//! as a `CapacityLease` so staging allocations are enforced for real.

use crate::calibration::paper;
use crate::calibration::GEMM_RING;
use northup::Tree;
use northup_exec::{CancelToken, ThreadPool};
use northup_sched::{
    build_chain, staging_reservation, AdmissionPolicy, Fabric, FaultPlan, JobId, JobScheduler,
    JobSpec, JobWork, Priority, RealFabric, SchedError, SchedReport, SchedulerConfig, SloConfig,
    TenantId,
};
use northup_sim::{SimDur, SimTime};
use rand::{Rng, SeedableRng, StdRng};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// The application mix a service-trace job can be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceJobKind {
    /// Paper-scale tiled dense GEMM (§IV-A), scaled down by `scale`.
    Gemm,
    /// HotSpot-2D with temporal blocking (§IV-B).
    Hotspot,
    /// CSR-Adaptive SpMV (§IV-C).
    Spmv,
}

impl ServiceJobKind {
    /// All kinds, in the round-robin order traces cycle through.
    pub const ALL: [ServiceJobKind; 3] = [
        ServiceJobKind::Gemm,
        ServiceJobKind::Hotspot,
        ServiceJobKind::Spmv,
    ];

    /// Short label used in job names and reports.
    pub fn label(self) -> &'static str {
        match self {
            ServiceJobKind::Gemm => "gemm",
            ServiceJobKind::Hotspot => "hotspot",
            ServiceJobKind::Spmv => "spmv",
        }
    }
}

/// Derive (reservation, per-chunk work) for one tenant of `kind` on
/// `tree`, scaled down from paper-scale by `1/scale` in linear dimension
/// (`scale ≥ 1`; larger ⇒ smaller jobs).
pub fn job_profile(kind: ServiceJobKind, tree: &Tree, scale: u64) -> (JobSpec, ServiceJobKind) {
    let scale = scale.max(1);
    let spec = match kind {
        ServiceJobKind::Gemm => {
            // One chunk = one block × block tile of C; the staging ring
            // holds `GEMM_RING` B-shards of the same size.
            let block = (paper::GEMM_BLOCK as u64 / scale).max(256);
            let n = (paper::GEMM_N as u64 / scale).max(block);
            let tile_bytes = block * block * 4;
            let chunks = ((n / block) * (n / block)) as u32;
            JobSpec::new(
                "gemm",
                staging_reservation(tree, GEMM_RING as u64 * tile_bytes),
                JobWork::new(chunks)
                    .read(tile_bytes)
                    .xfer(tile_bytes)
                    .compute(SimDur::from_micros(900))
                    .write(tile_bytes / 4),
            )
        }
        ServiceJobKind::Hotspot => {
            // One chunk = one trapezoid block per pass; double buffering.
            let block = (paper::HOTSPOT_BLOCK as u64 / scale).max(256);
            let n = (paper::HOTSPOT_N as u64 / scale).max(block);
            let tile_bytes = block * block * 4;
            let chunks = (2 * (n / block) * (n / block)) as u32;
            JobSpec::new(
                "hotspot",
                staging_reservation(tree, 2 * tile_bytes),
                JobWork::new(chunks)
                    .read(tile_bytes)
                    .xfer(tile_bytes)
                    .compute(SimDur::from_micros(400))
                    .write(tile_bytes),
            )
        }
        ServiceJobKind::Spmv => {
            // One chunk = one nnz-balanced CSR shard (values + indices +
            // the dense x gather); writeback is just the y slice.
            let rows = paper::SPMV_ROWS / scale;
            let nnz = (rows as f64 * paper::SPMV_NNZ_PER_ROW) as u64;
            let shard_bytes = (nnz * 8 + rows * 4) / crate::calibration::SPMV_CHUNKS as u64;
            JobSpec::new(
                "spmv",
                staging_reservation(tree, shard_bytes),
                JobWork::new(crate::calibration::SPMV_CHUNKS as u32)
                    .read(shard_bytes)
                    .xfer(shard_bytes)
                    .compute(SimDur::from_micros(250))
                    .write(rows * 4 / crate::calibration::SPMV_CHUNKS as u64),
            )
        }
    };
    (spec, kind)
}

/// Shape of a synthetic arrival trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of jobs.
    pub jobs: usize,
    /// RNG seed (same seed ⇒ same trace ⇒ same schedule).
    pub seed: u64,
    /// Mean inter-arrival gap in microseconds of virtual time; lower ⇒
    /// higher offered load.
    pub mean_gap_us: u64,
    /// Linear-dimension scale-down from paper-scale inputs.
    pub scale: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            jobs: 32,
            seed: 7,
            mean_gap_us: 2_000,
            scale: 16,
        }
    }
}

/// How many tenants a synthetic trace cycles through.
pub const SERVICE_TENANTS: u32 = 4;

/// Generate a deterministic mixed-application arrival trace: kinds cycle
/// Gemm → Hotspot → SpMV, tenants cycle `0..SERVICE_TENANTS` (both
/// index-derived, so adding quota experiments never perturbs the RNG
/// stream), priorities and inter-arrival gaps are drawn from the seeded
/// RNG.
pub fn synthetic_trace(tree: &Tree, cfg: &TraceConfig) -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut at_us: u64 = 0;
    let mut trace = Vec::with_capacity(cfg.jobs);
    for i in 0..cfg.jobs {
        let kind = ServiceJobKind::ALL[i % ServiceJobKind::ALL.len()];
        let (mut spec, _) = job_profile(kind, tree, cfg.scale);
        spec.name = format!("{}-{i}", kind.label());
        spec.tenant = TenantId(i as u32 % SERVICE_TENANTS);
        spec.priority = match rng.gen_range(0..6u32) {
            0 => Priority::Interactive,
            1 | 2 => Priority::Batch,
            _ => Priority::Normal,
        };
        at_us += rng.gen_range(0..cfg.mean_gap_us.max(1) * 2);
        spec.arrival = SimTime::from_secs_f64(at_us as f64 * 1e-6);
        trace.push(spec);
    }
    trace
}

/// Shape of an open-loop overload trace: arrivals come at a fixed
/// multiple of the tree's estimated service capacity, independent of
/// completions — so whenever `load_pct > 100` the backlog grows without
/// bound and only admission control can defend latency. This is the
/// regime the SLO overload controller (`northup_sched::SloConfig`)
/// exists for.
#[derive(Debug, Clone)]
pub struct OverloadConfig {
    /// Number of jobs.
    pub jobs: usize,
    /// RNG seed (drives inter-arrival gaps only; kinds, tenants, and
    /// classes are index-derived so load experiments never perturb the
    /// stream).
    pub seed: u64,
    /// Offered load as a percentage of estimated capacity: 100 ⇒ at
    /// capacity, 150 ⇒ 1.5×, 200 ⇒ 2× overload.
    pub load_pct: u32,
    /// Linear-dimension scale-down from paper-scale inputs.
    pub scale: u64,
    /// Assumed sustained job-level concurrency (admitted jobs making
    /// progress at once); divides the mean per-job service estimate into
    /// a sustainable arrival gap.
    pub concurrency: u32,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            jobs: 96,
            seed: 11,
            load_pct: 100,
            scale: 32,
            concurrency: 3,
        }
    }
}

/// Crude deterministic service-time estimate of one job: per-chunk
/// compute plus bytes at the modeled ~1 GiB/s blend, times the chunk
/// count. The overload generator only uses it as a load denominator, so
/// the scale factor cancels (the same convention as the fleet router's
/// cost estimate).
pub fn service_estimate(spec: &JobSpec) -> SimDur {
    let per_chunk =
        spec.work.compute.0 + spec.work.read_bytes + spec.work.xfer_bytes + spec.work.write_bytes;
    SimDur(per_chunk.saturating_mul(u64::from(spec.work.chunks.max(1))))
}

/// Generate a deterministic open-loop overload trace at
/// `cfg.load_pct`% of estimated capacity. Kinds cycle
/// Gemm → Hotspot → SpMV and classes cycle
/// Interactive → Normal → Batch → Batch on a different period (so every
/// kind appears in every class); tenants cycle `0..SERVICE_TENANTS`.
/// Every job holds `1/concurrency` of the staging level, so admission is
/// genuinely capacity-limited — excess arrivals *queue*, which is what
/// gives the controller a backlog to cap and shed. Only the
/// inter-arrival gaps are drawn from the seeded RNG — open loop, so
/// arrivals never react to completions.
pub fn overload_trace(tree: &Tree, cfg: &OverloadConfig) -> Vec<JobSpec> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Sustainable gap = mean per-job service estimate over the kind mix,
    // divided by the assumed concurrency; offered load scales it down.
    let mut demand_ns: u64 = 0;
    for kind in ServiceJobKind::ALL {
        let (spec, _) = job_profile(kind, tree, cfg.scale);
        demand_ns += service_estimate(&spec).0 / ServiceJobKind::ALL.len() as u64;
    }
    let concurrency = u64::from(cfg.concurrency.max(1));
    let sustainable_ns = demand_ns / concurrency;
    let mean_gap_ns = (sustainable_ns * 100 / u64::from(cfg.load_pct.max(1))).max(1);
    // One admission slot: jobs reserve an equal share of the staging
    // level, so at most `concurrency` run at once and the rest wait.
    let stage = tree
        .children(tree.root())
        .first()
        .copied()
        .unwrap_or_else(|| tree.root());
    let slot_bytes = (tree.node(stage).mem.capacity / concurrency).max(1);
    let mut at_ns: u64 = 0;
    let mut trace = Vec::with_capacity(cfg.jobs);
    for i in 0..cfg.jobs {
        let kind = ServiceJobKind::ALL[i % ServiceJobKind::ALL.len()];
        let (mut spec, _) = job_profile(kind, tree, cfg.scale);
        spec.name = format!("{}-{i}", kind.label());
        spec.tenant = TenantId(i as u32 % SERVICE_TENANTS);
        spec.reservation = staging_reservation(tree, slot_bytes);
        // Period-4 class cycle against the period-3 kind cycle: 25%
        // Interactive, 25% Normal, 50% Batch shed fodder.
        spec.priority = match i % 4 {
            0 => Priority::Interactive,
            1 => Priority::Normal,
            _ => Priority::Batch,
        };
        at_ns += rng.gen_range(1..=mean_gap_ns * 2);
        spec.arrival = SimTime(at_ns);
        trace.push(spec);
    }
    trace
}

/// The tuned controller the overload CI gate certifies: a 70 ms
/// guaranteed-class target with early, sticky escalation — caps at 50%
/// pressure, shedding at 70%, brownout at 85%, and a relax threshold
/// low enough (40%) that the clamps never oscillate off mid-overload.
/// One victim may queue per class (`batch_cap = 1`) and up to 16 are
/// shed per 5 ms tick. Empirically (fixed-seed 2× overload trace): the
/// uncontrolled run's Interactive p99 lands ~40% over target; this
/// config holds it ~15% under, sheds only Batch/Normal, and brownout
/// keeps ~25% more jobs completing than shedding alone would.
pub fn overload_slo() -> SloConfig {
    let mut slo = SloConfig::default().interactive_target(SimDur::from_millis(70));
    slo.cap_pct = 50;
    slo.shed_pct = 70;
    slo.degrade_pct = 85;
    slo.relax_pct = 40;
    slo.shed_per_tick = 16;
    slo.batch_cap = 1;
    slo
}

/// Replay `trace` under the overload-control stack: weighted-fair
/// admission and — when `slo` is `Some` — the feedback controller
/// (backpressure → shedding → brownout → autoscale projection).
/// Preemption is deliberately **off**: mid-flight eviction would absorb
/// moderate overload by itself, so turning it off is what makes this
/// driver certify that *admission-side* control alone defends the SLO.
/// Pass `None` for the uncontrolled baseline the CI gate uses as its
/// regression witness.
pub fn run_service_slo(
    tree: &Tree,
    trace: Vec<JobSpec>,
    slo: Option<SloConfig>,
) -> Result<SchedReport, SchedError> {
    run_service_with(
        tree,
        trace,
        SchedulerConfig {
            policy: AdmissionPolicy::WeightedFair,
            preempt: false,
            slo,
            ..SchedulerConfig::default()
        },
    )
}

/// Where a service trace comes from.
#[derive(Debug, Clone)]
pub enum TraceSource {
    /// Generated from a seeded [`TraceConfig`].
    Synthetic(TraceConfig),
    /// Imported from a CSV file (see [`trace_from_csv`] for the format).
    Csv(PathBuf),
}

impl TraceSource {
    /// Materialize the trace (generating or parsing as appropriate).
    pub fn load(&self, tree: &Tree) -> Result<Vec<JobSpec>, TraceError> {
        match self {
            TraceSource::Synthetic(cfg) => Ok(synthetic_trace(tree, cfg)),
            TraceSource::Csv(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| TraceError::at(0, format!("{}: {e}", path.display())))?;
                trace_from_csv(&text)
            }
        }
    }
}

/// A malformed trace file: the offending line (1-based; 0 for file-level
/// problems) and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number (0 when the file itself could not be read).
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl TraceError {
    fn at(line: usize, msg: impl Into<String>) -> Self {
        TraceError {
            line,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for TraceError {}

/// The header line every trace CSV must start with (after optional `#`
/// comments). Times are integer nanoseconds so round-trips are exact.
pub const TRACE_CSV_HEADER: &str =
    "name,tenant,priority,arrival_ns,chunks,read_bytes,xfer_bytes,compute_ns,write_bytes,reservation";

fn priority_label(p: Priority) -> &'static str {
    match p {
        Priority::Interactive => "interactive",
        Priority::Normal => "normal",
        Priority::Batch => "batch",
    }
}

/// Serialize a trace to the CSV format [`trace_from_csv`] parses. The
/// `reservation` column holds `node:bytes` pairs joined by `;` (`-` when
/// empty); job names must not contain commas.
pub fn trace_to_csv(trace: &[JobSpec]) -> String {
    let mut out = String::from(TRACE_CSV_HEADER);
    out.push('\n');
    for spec in trace {
        let reserve = if spec.reservation.is_empty() {
            "-".to_string()
        } else {
            spec.reservation
                .iter()
                .map(|(n, b)| format!("{}:{b}", n.0))
                .collect::<Vec<_>>()
                .join(";")
        };
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{}\n",
            spec.name,
            spec.tenant.0,
            priority_label(spec.priority),
            spec.arrival.0,
            spec.work.chunks,
            spec.work.read_bytes,
            spec.work.xfer_bytes,
            spec.work.compute.0,
            spec.work.write_bytes,
            reserve,
        ));
    }
    out
}

/// Parse a trace from CSV text: a [`TRACE_CSV_HEADER`] line followed by
/// one job per line. Blank lines and `#` comments are ignored; errors
/// carry the 1-based line number.
pub fn trace_from_csv(text: &str) -> Result<Vec<JobSpec>, TraceError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));
    let (hline, header) = lines
        .next()
        .ok_or_else(|| TraceError::at(0, "empty trace"))?;
    if header != TRACE_CSV_HEADER {
        return Err(TraceError::at(
            hline,
            format!("expected header `{TRACE_CSV_HEADER}`"),
        ));
    }
    let mut trace = Vec::new();
    for (ln, line) in lines {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 10 {
            return Err(TraceError::at(
                ln,
                format!("expected 10 fields, got {}", f.len()),
            ));
        }
        let num = |s: &str, what: &str| -> Result<u64, TraceError> {
            s.parse()
                .map_err(|_| TraceError::at(ln, format!("bad {what} `{s}`")))
        };
        let priority = match f[2] {
            "interactive" => Priority::Interactive,
            "normal" => Priority::Normal,
            "batch" => Priority::Batch,
            other => return Err(TraceError::at(ln, format!("bad priority `{other}`"))),
        };
        let mut reservation = northup_sched::Reservation::new();
        if f[9] != "-" {
            for pair in f[9].split(';') {
                let (node, bytes) = pair
                    .split_once(':')
                    .ok_or_else(|| TraceError::at(ln, format!("bad reservation `{pair}`")))?;
                let node: usize = node
                    .parse()
                    .map_err(|_| TraceError::at(ln, format!("bad reservation node `{node}`")))?;
                reservation.set(northup::NodeId(node), num(bytes, "reservation bytes")?);
            }
        }
        let work = JobWork::new(num(f[4], "chunks")? as u32)
            .read(num(f[5], "read_bytes")?)
            .xfer(num(f[6], "xfer_bytes")?)
            .compute(SimDur(num(f[7], "compute_ns")?))
            .write(num(f[8], "write_bytes")?);
        trace.push(
            JobSpec::new(f[0], reservation, work)
                .tenant(TenantId(num(f[1], "tenant")? as u32))
                .priority(priority)
                .arrival(SimTime(num(f[3], "arrival_ns")?)),
        );
    }
    Ok(trace)
}

/// Replay `trace` through a [`JobScheduler`] with the given policy and
/// otherwise-default configuration.
pub fn run_service(
    tree: &Tree,
    trace: Vec<JobSpec>,
    policy: AdmissionPolicy,
) -> Result<SchedReport, SchedError> {
    run_service_with(
        tree,
        trace,
        SchedulerConfig {
            policy,
            ..SchedulerConfig::default()
        },
    )
}

/// Replay `trace` through a [`JobScheduler`] with full control over the
/// configuration (preemption, resize drain, tenant quotas).
pub fn run_service_with(
    tree: &Tree,
    trace: Vec<JobSpec>,
    cfg: SchedulerConfig,
) -> Result<SchedReport, SchedError> {
    let mut sched = JobScheduler::new(tree.clone(), cfg);
    for spec in trace {
        sched.submit(spec);
    }
    sched.run()
}

/// One job's real-thread execution record from [`run_service_real`].
#[derive(Debug, Clone)]
pub struct RealJobRun {
    /// The scheduler's job id (submission order).
    pub id: JobId,
    /// Job name from the trace.
    pub name: String,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Chunks executed for real (always equals the modeled `chunks_done`).
    pub chunks_run: u32,
    /// The fabric's commutative checksum over every staged byte —
    /// deterministic for a given chunk set regardless of thread count.
    pub checksum: u64,
    /// Chunk attempts retried after an injected device fault (always 0
    /// without a fault plan).
    pub retries: u32,
}

/// Result of [`run_service_real`]: the modeled schedule plus the
/// real-thread execution record of every job that ran chunks.
#[derive(Debug)]
pub struct ServiceRealRun {
    /// The virtual-time schedule the execution followed.
    pub report: SchedReport,
    /// Real execution records, in job-id order (admitted jobs only).
    pub jobs: Vec<RealJobRun>,
    /// Worker threads in the shared pool.
    pub threads: usize,
}

/// Replay `trace` in virtual time, then execute every admitted job's
/// chunk chain **for real**: each job gets a [`RealFabric`] arena over
/// `tree`, its admitted reservation installed as a `CapacityLease` (so
/// staging `alloc`s are enforced at the byte level), and its chunks
/// driven in order through `ThreadPool::run_chain` on a shared
/// work-stealing pool — exactly the chunks the model says the job
/// completed, including partial prefixes of cancelled jobs.
pub fn run_service_real(
    tree: &Tree,
    trace: Vec<JobSpec>,
    policy: AdmissionPolicy,
    threads: usize,
) -> Result<ServiceRealRun, SchedError> {
    run_real_inner(
        tree,
        trace,
        SchedulerConfig {
            policy,
            ..SchedulerConfig::default()
        },
        threads,
        None,
    )
}

/// [`run_service_real`] under a deterministic chaos plan: the same
/// [`FaultPlan`] drives the modeled replay (seeded stage faults, retry
/// backoff, quarantine — all in virtual time) **and** the real execution
/// (every job's [`RealFabric`] arena wires fault injectors into its
/// staging backends; chunks are driven through
/// `ThreadPool::run_chain_with_retry` with real, cancellation-aware
/// backoff sleeps). Chunk bodies are transactional, so a retried chunk
/// applies its side effects exactly once and the per-job checksums equal
/// a fault-free run's. Same tree + trace + plan ⇒ bit-identical report,
/// checksums, and retry counts.
pub fn run_service_real_chaos(
    tree: &Tree,
    trace: Vec<JobSpec>,
    policy: AdmissionPolicy,
    threads: usize,
    plan: FaultPlan,
) -> Result<ServiceRealRun, SchedError> {
    run_real_inner(
        tree,
        trace,
        SchedulerConfig {
            policy,
            fault_plan: Some(plan.clone()),
            ..SchedulerConfig::default()
        },
        threads,
        Some(plan),
    )
}

/// Real backoff sleeps are capped so chaos test runs stay fast; the
/// modeled replay charges the uncapped virtual-time backoff.
const REAL_BACKOFF_CAP: Duration = Duration::from_millis(5);

fn run_real_inner(
    tree: &Tree,
    trace: Vec<JobSpec>,
    cfg: SchedulerConfig,
    threads: usize,
    plan: Option<FaultPlan>,
) -> Result<ServiceRealRun, SchedError> {
    let retry = cfg.retry;
    let specs = trace.clone();
    let report = run_service_with(tree, trace, cfg)?;
    let pool = Arc::new(ThreadPool::new(threads));
    let mut jobs = Vec::new();
    for (outcome, spec) in report.jobs.iter().zip(&specs) {
        let Some(leaf) = outcome.leaf else { continue };
        if outcome.chunks_done == 0 {
            continue;
        }
        let chain = build_chain(tree, leaf, spec.work.chunk_work(), spec.work.chunks);
        let staging = chain.staging_node(tree);
        let per_chunk = spec
            .work
            .read_bytes
            .max(spec.work.xfer_bytes)
            .max(spec.work.write_bytes)
            .max(4 << 10);
        let mut fab = match &plan {
            Some(p) => RealFabric::with_faults(tree, Arc::clone(&pool), per_chunk * 2, p.clone())?,
            None => RealFabric::new(tree, Arc::clone(&pool), per_chunk * 2)?,
        };
        if let Some(lease) = outcome.lease() {
            fab.install_lease(lease);
        }
        let token = CancelToken::new();
        let mut t = SimTime::ZERO;
        let mut failure = None;
        let max_attempts = if plan.is_some() {
            retry.max_attempts
        } else {
            1
        };
        let backoff = |chunk: u32, attempt: u32| -> Duration {
            let jitter = plan
                .as_ref()
                .map(|p| p.jitter(staging, u64::from(chunk), attempt))
                .unwrap_or(0.0);
            Duration::from_secs_f64(retry.backoff(attempt, jitter).as_secs_f64())
                .min(REAL_BACKOFF_CAP)
        };
        let stats =
            pool.run_chain_with_retry(0, outcome.chunks_done, &token, max_attempts, backoff, |i| {
                match fab.run_chunk(&chain, i, t) {
                    Ok(end) => {
                        t = end;
                        failure = None;
                        true
                    }
                    Err(e) => {
                        failure = Some(e);
                        false
                    }
                }
            });
        if stats.gave_up || stats.completed < outcome.chunks_done {
            if let Some(e) = failure {
                return Err(e.into());
            }
        }
        debug_assert_eq!(stats.completed, outcome.chunks_done);
        jobs.push(RealJobRun {
            id: outcome.id,
            name: outcome.name.clone(),
            tenant: outcome.tenant,
            chunks_run: stats.completed,
            checksum: fab.checksum(),
            retries: stats.retries,
        });
    }
    Ok(ServiceRealRun {
        report,
        jobs,
        threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use northup::presets;
    use northup_hw::catalog;
    use northup_sched::JobState;

    fn tree() -> Tree {
        presets::apu_two_level(catalog::ssd_hyperx_predator())
    }

    #[test]
    fn profiles_fit_the_apu_staging_level() {
        let tree = tree();
        let dram = tree.children(tree.root())[0];
        let budget = tree.node(dram).mem.capacity;
        for kind in ServiceJobKind::ALL {
            let (spec, _) = job_profile(kind, &tree, 16);
            assert!(
                spec.reservation.get(dram) > 0 && spec.reservation.get(dram) <= budget,
                "{:?} reservation must be admissible",
                kind
            );
            assert!(spec.work.chunks > 0);
        }
    }

    #[test]
    fn trace_is_deterministic_and_sorted_enough() {
        let tree = tree();
        let cfg = TraceConfig::default();
        let t1 = synthetic_trace(&tree, &cfg);
        let t2 = synthetic_trace(&tree, &cfg);
        assert_eq!(t1.len(), 32);
        for (a, b) in t1.iter().zip(t2.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.priority, b.priority);
        }
    }

    #[test]
    fn service_completes_mixed_trace_and_beats_fifo() {
        let tree = tree();
        let trace = synthetic_trace(&tree, &TraceConfig::default());
        let fair = run_service(&tree, trace.clone(), AdmissionPolicy::WeightedFair).unwrap();
        let fifo = run_service(&tree, trace, AdmissionPolicy::Fifo).unwrap();
        assert!(fair.all_terminal() && fifo.all_terminal());
        assert!(fair.count(JobState::Done) + fair.count(JobState::Rejected) == fair.jobs.len());
        assert!(
            fair.throughput >= fifo.throughput,
            "fair {:.2} jobs/s vs fifo {:.2} jobs/s",
            fair.throughput,
            fifo.throughput
        );
    }

    #[test]
    fn trace_cycles_through_all_tenants() {
        let tree = tree();
        let trace = synthetic_trace(&tree, &TraceConfig::default());
        let tenants: std::collections::BTreeSet<_> = trace.iter().map(|s| s.tenant).collect();
        assert_eq!(tenants.len(), SERVICE_TENANTS as usize);
        assert_eq!(trace[0].tenant, northup_sched::TenantId(0));
        assert_eq!(trace[5].tenant, northup_sched::TenantId(1));
    }

    #[test]
    fn csv_round_trips_the_synthetic_trace() {
        let tree = tree();
        let trace = synthetic_trace(&tree, &TraceConfig::default());
        let csv = trace_to_csv(&trace);
        let back = trace_from_csv(&csv).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in trace.iter().zip(back.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.tenant, b.tenant);
            assert_eq!(a.priority, b.priority);
            assert_eq!(a.arrival, b.arrival);
            assert_eq!(a.work, b.work);
            assert_eq!(a.reservation, b.reservation);
        }
    }

    #[test]
    fn csv_parse_errors_carry_line_numbers() {
        let err = trace_from_csv("nonsense").unwrap_err();
        assert_eq!(err.line, 1);
        let nine_fields = format!("{TRACE_CSV_HEADER}\nbad,0,normal,0,1,1,1,1,1\n");
        let err = trace_from_csv(&nine_fields).unwrap_err();
        assert_eq!(err.line, 2);
        let bad_prio = format!("{TRACE_CSV_HEADER}\n# a comment\n\nj,0,urgent,0,1,1,1,1,1,-\n");
        let err = trace_from_csv(&bad_prio).unwrap_err();
        assert_eq!(err.line, 4, "comments and blanks keep their line numbers");
        assert!(err.msg.contains("urgent"));
        assert!(trace_from_csv("").is_err());
    }

    #[test]
    fn checked_in_sample_trace_loads_and_completes() {
        let tree = tree();
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/data/service_trace.csv");
        let trace = TraceSource::Csv(path.into()).load(&tree).unwrap();
        assert!(trace.len() >= 8, "sample should be a real workload");
        let tenants: std::collections::BTreeSet<_> = trace.iter().map(|s| s.tenant).collect();
        assert!(tenants.len() >= 2, "sample exercises multiple tenants");
        let report = run_service(&tree, trace, AdmissionPolicy::WeightedFair).unwrap();
        assert!(report.all_terminal());
        assert!(report.count(JobState::Done) > 0);
    }

    /// Regenerate `data/service_trace.csv` after format or profile
    /// changes: `cargo test -p northup-apps regenerate_sample_trace --
    /// --ignored`.
    #[test]
    #[ignore = "writes the checked-in sample trace"]
    fn regenerate_sample_trace() {
        let tree = tree();
        let cfg = TraceConfig {
            jobs: 12,
            seed: 11,
            mean_gap_us: 1_500,
            scale: 32,
        };
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/data");
        std::fs::create_dir_all(dir).unwrap();
        let csv = trace_to_csv(&synthetic_trace(&tree, &cfg));
        std::fs::write(format!("{dir}/service_trace.csv"), csv).unwrap();
    }

    #[test]
    fn overload_trace_is_deterministic_and_open_loop() {
        let tree = tree();
        let cfg = OverloadConfig::default();
        let t1 = overload_trace(&tree, &cfg);
        let t2 = overload_trace(&tree, &cfg);
        assert_eq!(t1.len(), cfg.jobs);
        for (a, b) in t1.iter().zip(t2.iter()) {
            assert_eq!(
                (&a.name, a.arrival, a.priority),
                (&b.name, b.arrival, b.priority)
            );
        }
        // Every kind appears in every class (period-3 × period-4 cycles).
        let combos: std::collections::BTreeSet<_> = t1
            .iter()
            .enumerate()
            .map(|(i, s)| (i % 3, s.priority as u8))
            .collect();
        assert_eq!(combos.len(), 9, "kind × class coverage: {combos:?}");
        // Doubling the offered load halves the span of the same arrivals.
        let double = overload_trace(
            &tree,
            &OverloadConfig {
                load_pct: 200,
                ..cfg.clone()
            },
        );
        let span = |t: &[JobSpec]| t.last().unwrap().arrival.0;
        assert!(
            span(&double) < span(&t1) * 3 / 4,
            "2x load compresses arrivals: {} vs {}",
            span(&double),
            span(&t1)
        );
    }

    #[test]
    fn slo_controller_sheds_batch_to_protect_interactive_under_overload() {
        use northup_sched::JobState;
        let tree = tree();
        let cfg = OverloadConfig {
            jobs: 320,
            load_pct: 200,
            ..OverloadConfig::default()
        };
        let trace = overload_trace(&tree, &cfg);
        let slo = overload_slo();
        let target = slo.targets[0];
        let on = run_service_slo(&tree, trace.clone(), Some(slo)).unwrap();
        let off = run_service_slo(&tree, trace, None).unwrap();
        assert!(on.all_terminal() && off.all_terminal());
        assert!(off.shed_log.is_empty(), "no controller, no sheds");
        assert!(!on.shed_log.is_empty(), "2x overload forces shedding");
        assert!(
            on.shed_log.iter().all(|s| s.class != Priority::Interactive),
            "shedding never touches the guaranteed class"
        );
        // The controller holds the guaranteed class inside its SLO while
        // the uncontrolled run breaches it — the tentpole claim.
        let p99 = |r: &SchedReport| r.class_p99(Priority::Interactive);
        assert!(
            p99(&on) <= target,
            "controlled p99 {:?} must hold the {:?} target",
            p99(&on),
            target
        );
        assert!(
            p99(&off) > target,
            "uncontrolled p99 {:?} is the regression witness",
            p99(&off)
        );
        // Brownout really ran: some non-guaranteed jobs completed with
        // degraded chunk work.
        assert!(on.degraded_jobs() > 0, "tier 3 brownout engaged");
        assert!(on.count(JobState::Done) > 0);
    }

    #[test]
    fn interactive_burst_preempts_batch_service_jobs() {
        use northup_sched::Reservation;
        let tree = tree();
        let dram = tree.children(tree.root())[0];
        let budget = tree.node(dram).mem.capacity;
        let hog = JobSpec::new(
            "hog",
            Reservation::new().with(dram, budget * 6 / 10),
            JobWork::new(16)
                .read(8 << 20)
                .xfer(8 << 20)
                .compute(SimDur::from_micros(500)),
        )
        .priority(Priority::Batch);
        let vip = JobSpec::new(
            "vip",
            Reservation::new().with(dram, budget * 6 / 10),
            JobWork::new(2)
                .read(8 << 20)
                .xfer(8 << 20)
                .compute(SimDur::from_micros(500)),
        )
        .priority(Priority::Interactive)
        .arrival(SimTime::from_secs_f64(0.002));
        let report = run_service_with(
            &tree,
            vec![hog, vip],
            SchedulerConfig {
                preempt: true,
                ..SchedulerConfig::default()
            },
        )
        .unwrap();
        assert!(report.all_terminal());
        let hog = report.jobs.iter().find(|j| j.name == "hog").unwrap();
        let vip = report.jobs.iter().find(|j| j.name == "vip").unwrap();
        assert_eq!(vip.state, JobState::Done);
        assert_eq!(hog.state, JobState::Done);
        assert!(hog.preemptions >= 1, "batch hog evicted for the burst");
        assert_eq!(hog.chunks_done, 16, "evicted job still completes fully");
        assert!(
            vip.admitted_at.unwrap() < hog.finished_at.unwrap(),
            "interactive job admitted before the batch job drained"
        );
    }

    #[test]
    fn real_service_runs_the_full_trace_with_leases_enforced() {
        let tree = tree();
        let cfg = TraceConfig {
            scale: 64,
            ..TraceConfig::default()
        };
        let trace = synthetic_trace(&tree, &cfg);
        assert_eq!(trace.len(), 32);
        let run = run_service_real(&tree, trace, AdmissionPolicy::WeightedFair, 4).unwrap();
        assert!(run.report.all_terminal());
        assert!(run.report.count(JobState::Done) > 0);
        // Every job the model says ran chunks executed exactly those
        // chunks for real, under its installed lease.
        for out in run.report.jobs.iter().filter(|j| j.chunks_done > 0) {
            let real = run
                .jobs
                .iter()
                .find(|r| r.id == out.id)
                .unwrap_or_else(|| panic!("{} missing a real run", out.name));
            assert_eq!(real.chunks_run, out.chunks_done, "{}", out.name);
            assert_ne!(real.checksum, 0, "{} streamed real bytes", out.name);
            assert_eq!(real.tenant, out.tenant);
        }
    }

    #[test]
    fn chaos_service_retries_transparently_to_the_clean_checksums() {
        let tree = tree();
        let cfg = TraceConfig {
            jobs: 9,
            seed: 3,
            scale: 64,
            ..TraceConfig::default()
        };
        let clean = run_service_real(
            &tree,
            synthetic_trace(&tree, &cfg),
            AdmissionPolicy::Fifo,
            2,
        )
        .unwrap();
        let chaos = || {
            run_service_real_chaos(
                &tree,
                synthetic_trace(&tree, &cfg),
                AdmissionPolicy::Fifo,
                2,
                FaultPlan::new(13).transient_rate(8192),
            )
            .unwrap()
        };
        let run = chaos();
        assert!(run.report.all_terminal());
        assert!(
            !run.report.fault_log.is_empty(),
            "the modeled replay sees the plan's stage faults"
        );
        let retries: u32 = run.jobs.iter().map(|j| j.retries).sum();
        assert!(retries > 0, "the real arenas see injected device faults");
        // Retried chunks commit exactly once: every job that completed in
        // both runs streams byte-identical data.
        for r in &run.jobs {
            if let Some(c) = clean.jobs.iter().find(|c| c.id == r.id) {
                if c.chunks_run == r.chunks_run {
                    assert_eq!(c.checksum, r.checksum, "{}", r.name);
                }
            }
        }
        // Same trace + plan ⇒ the whole chaos run reproduces bit for bit.
        let again = chaos();
        assert_eq!(format!("{:?}", run.report), format!("{:?}", again.report));
        for (a, b) in run.jobs.iter().zip(again.jobs.iter()) {
            assert_eq!(
                (a.checksum, a.retries),
                (b.checksum, b.retries),
                "{}",
                a.name
            );
        }
    }

    #[test]
    fn modeled_and_real_execution_agree_for_any_thread_count() {
        let tree = tree();
        let cfg = TraceConfig {
            jobs: 9,
            seed: 3,
            scale: 64,
            ..TraceConfig::default()
        };
        let one = run_service_real(
            &tree,
            synthetic_trace(&tree, &cfg),
            AdmissionPolicy::Fifo,
            1,
        )
        .unwrap();
        let four = run_service_real(
            &tree,
            synthetic_trace(&tree, &cfg),
            AdmissionPolicy::Fifo,
            4,
        )
        .unwrap();
        // The modeled schedule is thread-count independent...
        assert_eq!(one.report.makespan, four.report.makespan);
        // ...and so is the real execution: same jobs, chunk counts, and
        // byte-level checksums.
        assert_eq!(one.jobs.len(), four.jobs.len());
        for (a, b) in one.jobs.iter().zip(four.jobs.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.chunks_run, b.chunks_run);
            assert_eq!(a.checksum, b.checksum, "{}", a.name);
        }
    }
}
