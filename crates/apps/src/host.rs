//! Host-side execution-mode helpers shared by the application drivers.
//!
//! Every out-of-core driver runs the same virtual-time bookkeeping in
//! both [`ExecMode`]s, but only materializes host oracles and real bytes
//! under [`ExecMode::Real`]. [`when_real`] captures that guard once so
//! the drivers read as a single code path instead of repeating the
//! `if mode == ExecMode::Real { … Some } else { None }` block.

use northup::{ExecMode, Result};

/// Run `init` only in [`ExecMode::Real`], passing its value through as
/// `Some`; in `Modeled` mode the initializer never runs and the result
/// is `None`.
///
/// Pair with [`Option::unzip`] when the initializer produces an input
/// pair (the A/B matrices, the temperature/power grids).
pub fn when_real<T>(mode: ExecMode, init: impl FnOnce() -> Result<T>) -> Result<Option<T>> {
    if mode == ExecMode::Real {
        init().map(Some)
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modeled_mode_skips_the_initializer() {
        let mut ran = false;
        let out = when_real(ExecMode::Modeled, || {
            ran = true;
            Ok(7)
        })
        .unwrap();
        assert_eq!(out, None);
        assert!(!ran);
    }

    #[test]
    fn real_mode_runs_it_and_propagates_errors() {
        let out = when_real(ExecMode::Real, || Ok((1, 2))).unwrap();
        assert_eq!(out.unzip(), (Some(1), Some(2)));
        let err: Result<Option<u32>> = when_real(ExecMode::Real, || {
            Err(northup::NorthupError::NoProcessor(northup::NodeId(0)))
        });
        assert!(err.is_err());
    }
}
