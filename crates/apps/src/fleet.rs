//! Fleet driver: replay a mixed-application arrival trace across a
//! federated fleet of Northup shard trees (DESIGN.md §11).
//!
//! This is the multi-shard sibling of [`crate::service`]: the same
//! §IV application shapes ([`job_profile`]) and seeded trace
//! generation, but each job also carries a **data home** — the shard
//! whose root storage holds its input — and placement is delegated to
//! the `northup-fleet` router instead of a single scheduler. Tenants
//! anchor their data sets on a shard (`tenant mod shards`), and most of
//! a tenant's jobs arrive homed there ([`AFFINITY_PCT`]), so the trace
//! exercises the router's data-gravity term the way a real multi-tenant
//! federation would: hot tenants spill off their data shard only when
//! load or fault pressure outweighs the modeled transfer cost.

use crate::service::{job_profile, ServiceJobKind, TraceConfig, SERVICE_TENANTS};
use northup_fleet::{Fleet, FleetConfig, FleetError, FleetJob, FleetReport};
use northup_sched::{Priority, TenantId};
use northup_sim::SimTime;
use rand::{Rng, SeedableRng, StdRng};

/// Percentage of a tenant's jobs homed on its data shard; the rest draw
/// a uniform home (cross-tenant reads, shared inputs).
pub const AFFINITY_PCT: u32 = 75;

/// Generate a deterministic fleet arrival trace over `cfg.shards`
/// shards: kinds cycle Gemm → Hotspot → SpMV and tenants cycle
/// `0..SERVICE_TENANTS` (both index-derived, exactly as
/// [`crate::service::synthetic_trace`] does), priorities, inter-arrival
/// gaps, and the affinity draw come from the seeded RNG, and each job's
/// home shard follows its tenant's data anchor with probability
/// [`AFFINITY_PCT`].
pub fn fleet_trace(cfg: &FleetConfig, tc: &TraceConfig) -> Vec<FleetJob> {
    let mut rng = StdRng::seed_from_u64(tc.seed);
    let shards = cfg.shards.max(1) as u32;
    let mut at_us: u64 = 0;
    let mut trace = Vec::with_capacity(tc.jobs);
    for i in 0..tc.jobs {
        let kind = ServiceJobKind::ALL[i % ServiceJobKind::ALL.len()];
        let (spec, _) = job_profile(kind, &cfg.tree, tc.scale);
        let tenant = TenantId(i as u32 % SERVICE_TENANTS);
        let priority = match rng.gen_range(0..6u32) {
            0 => Priority::Interactive,
            1 | 2 => Priority::Batch,
            _ => Priority::Normal,
        };
        let anchor = tenant.0 % shards;
        let home = if rng.gen_range(0..100u32) < AFFINITY_PCT {
            anchor
        } else {
            rng.gen_range(0..shards)
        };
        at_us += rng.gen_range(0..tc.mean_gap_us.max(1) * 2);
        trace.push(
            FleetJob::new(format!("{}-{i}", kind.label()), spec.reservation, spec.work)
                .tenant(tenant)
                .priority(priority)
                .arrival(SimTime::from_secs_f64(at_us as f64 * 1e-6))
                .home(home),
        );
    }
    trace
}

/// Replay a synthetic fleet trace through [`FleetConfig::preset`] —
/// `shards` × `presets::fleet_shard` trees with fault-aware placement
/// and probation enabled — and return the settled [`FleetReport`].
pub fn run_fleet(shards: usize, seed: u64, tc: &TraceConfig) -> Result<FleetReport, FleetError> {
    run_fleet_with(FleetConfig::preset(shards, seed), tc)
}

/// Replay a synthetic fleet trace with full control over the federation
/// configuration (shard tree, scheduler knobs, link, router weights,
/// per-shard fault-plan overrides).
pub fn run_fleet_with(cfg: FleetConfig, tc: &TraceConfig) -> Result<FleetReport, FleetError> {
    let trace = fleet_trace(&cfg, tc);
    let mut fleet = Fleet::new(cfg)?;
    for job in trace {
        fleet.submit(job);
    }
    fleet.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use northup_sched::JobState;

    fn light() -> TraceConfig {
        TraceConfig {
            jobs: 48,
            seed: 11,
            mean_gap_us: 4_000,
            scale: 32,
        }
    }

    #[test]
    fn run_fleet_settles_every_job_and_replays_bit_identically() {
        let report = run_fleet(4, 7, &light()).unwrap();
        assert_eq!(report.outcomes.len(), 48);
        let done = report.count(JobState::Done);
        assert!(done > 40, "most jobs complete: {done}");
        assert!(report.capacity_ok, "fleet capacity invariant");
        assert!(report.exactly_once(), "no chunk ran twice or was skipped");
        let again = run_fleet(4, 7, &light()).unwrap();
        assert_eq!(report.to_json(), again.to_json(), "bit-identical replay");
    }

    #[test]
    fn data_affinity_anchors_tenants_to_their_home_shards() {
        let cfg = FleetConfig::preset(4, 7);
        let trace = fleet_trace(&cfg, &light());
        let anchored = trace
            .iter()
            .enumerate()
            .filter(|(i, j)| j.home == (*i as u32 % SERVICE_TENANTS) % 4)
            .count();
        // 75% by the affinity draw, plus uniform draws that happen to
        // land on the anchor.
        assert!(anchored * 2 > trace.len(), "anchored {anchored}/48");

        let at_home = |report: &northup_fleet::FleetReport| {
            report
                .outcomes
                .iter()
                .zip(&trace)
                .filter(|(o, j)| o.shard == j.home)
                .count()
        };
        // Over the default IB-class link, moving a few-MB input costs
        // well under one job's service time, so load balancing wins and
        // most jobs spill off their data shard.
        let fast = run_fleet(4, 7, &light()).unwrap();
        assert!(
            at_home(&fast) * 2 < trace.len(),
            "spilled: {}",
            at_home(&fast)
        );
        // Over a WAN-class link the transfer outweighs the load deltas
        // of a symmetric trace: data gravity pins tenants to their
        // anchors.
        let mut wan = FleetConfig::preset(4, 7);
        wan.link.bandwidth = 1e8;
        let slow = run_fleet_with(wan, &light()).unwrap();
        assert!(
            at_home(&slow) * 2 > trace.len(),
            "pinned: {}",
            at_home(&slow)
        );
    }

    #[test]
    fn different_seeds_give_different_traces() {
        let cfg = FleetConfig::preset(4, 7);
        let a = fleet_trace(&cfg, &light());
        let b = fleet_trace(
            &cfg,
            &TraceConfig {
                seed: 12,
                ..light()
            },
        );
        let homes_a: Vec<_> = a.iter().map(|j| j.home).collect();
        let homes_b: Vec<_> = b.iter().map(|j| j.home).collect();
        let arrivals_differ = a.iter().zip(&b).any(|(x, y)| x.arrival != y.arrival);
        assert!(homes_a != homes_b || arrivals_differ);
    }
}
