//! Out-of-core map and reduce — a fourth application family, built entirely
//! on the generic [`ChunkPipeline`].
//!
//! [`ChunkPipeline`]: northup::ChunkPipeline
//!
//! The paper claims the framework "is generic to a variety of problems"
//! (§IV); these two primitives demonstrate it: a new out-of-core operator
//! needs only a load closure and a work closure — pipelining, prefetch
//! ordering, ring hazards, breakdown profiling and I/O accounting all come
//! from the runtime.
//!
//! * [`reduce_northup`] — global sum/min/max of an array larger than
//!   memory (pure streaming, the §VI low-reuse case).
//! * [`map_northup`] — elementwise `y = a*x + b` written back to storage
//!   (stream in, stream out).

use crate::calibration::model_for;
use crate::host::when_real;
use crate::report::AppRun;
use northup::{ChunkPipeline, ExecMode, ProcKind, Result, Runtime, Tree};
use northup_kernels::{bytes_to_f32s, f32s_to_bytes};
use serde::{Deserialize, Serialize};

/// Configuration of a streaming map/reduce scenario.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Number of f32 elements in the array on storage.
    pub elements: u64,
    /// Elements per staged chunk.
    pub chunk: u64,
    /// Staging ring depth.
    pub ring: usize,
    /// Input seed (Real mode).
    pub seed: u64,
}

impl StreamConfig {
    /// Laptop-scale config for Real-mode verification.
    pub fn small() -> Self {
        StreamConfig {
            elements: 10_000,
            chunk: 1_024,
            ring: 2,
            seed: 5,
        }
    }

    /// Paper-scale streaming config: a 4 Gi-element (16 GiB) array through
    /// the 2 GB staging buffer.
    pub fn paper() -> Self {
        StreamConfig {
            elements: 4 << 30,
            chunk: 64 << 20,
            ring: 2,
            seed: 5,
        }
    }

    fn chunks(&self) -> Vec<(u64, u64)> {
        // (element offset, element count) per chunk.
        let mut out = Vec::new();
        let mut at = 0;
        while at < self.elements {
            let n = self.chunk.min(self.elements - at);
            out.push((at, n));
            at += n;
        }
        out
    }

    fn host_input(&self) -> Vec<f32> {
        (0..self.elements)
            .map(|i| {
                let v = (i.wrapping_mul(0x9E37_79B9).wrapping_add(self.seed) % 1000) as f32;
                v / 500.0 - 1.0
            })
            .collect()
    }
}

/// The reduction performed at the leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReduceOp {
    /// Global sum.
    Sum,
    /// Global maximum.
    Max,
}

/// Streaming out-of-core reduction over a chain tree. Returns the reduced
/// value (Real mode; 0 in Modeled mode) and the run.
pub fn reduce_northup(
    cfg: &StreamConfig,
    op: ReduceOp,
    tree: Tree,
    mode: ExecMode,
) -> Result<(f64, AppRun)> {
    let rt = Runtime::new(tree, mode)?;
    let root = rt.tree().root();
    let bytes = cfg.elements * 4;
    let file = rt.alloc(bytes, root)?;

    let host = when_real(mode, || {
        let data = cfg.host_input();
        rt.write_slice(file, 0, &f32s_to_bytes(&data))?;
        Ok(data)
    })?;

    let stage = *rt.tree().children(root).first().expect("staging level");
    let gpu = rt
        .tree()
        .node(stage)
        .procs
        .iter()
        .find(|p| p.kind == ProcKind::Gpu)
        .expect("reduction runs on the staging GPU");
    let gpu_model = model_for(&gpu.name);

    let pipe = ChunkPipeline::new(&rt, stage, cfg.ring, &[cfg.chunk * 4])?;
    let acc = std::cell::Cell::new(match op {
        ReduceOp::Sum => 0.0f64,
        ReduceOp::Max => f64::NEG_INFINITY,
    });
    pipe.run(
        &cfg.chunks(),
        |&(off, n), bufs| {
            rt.move_data(bufs[0], 0, file, off * 4, n * 4)?;
            Ok(())
        },
        |&(_, n), bufs| {
            // One streaming pass over the chunk: memory-bound.
            let dur = gpu_model.roofline(n as f64, n as f64 * 4.0);
            rt.charge_compute(stage, ProcKind::Gpu, dur, &[bufs[0]], &[], "reduce chunk")?;
            if mode == ExecMode::Real {
                let mut raw = vec![0u8; (n * 4) as usize];
                rt.read_slice(bufs[0], 0, &mut raw)?;
                let vals = bytes_to_f32s(&raw);
                match op {
                    ReduceOp::Sum => {
                        acc.set(acc.get() + vals.iter().map(|&v| v as f64).sum::<f64>())
                    }
                    ReduceOp::Max => {
                        acc.set(vals.iter().map(|&v| v as f64).fold(acc.get(), f64::max))
                    }
                }
            }
            Ok(())
        },
    )?;
    pipe.release()?;

    let mut verified = None;
    if let Some(host) = host {
        let oracle = match op {
            ReduceOp::Sum => host.iter().map(|&v| v as f64).sum::<f64>(),
            ReduceOp::Max => host
                .iter()
                .map(|&v| v as f64)
                .fold(f64::NEG_INFINITY, f64::max),
        };
        verified = Some((acc.get() - oracle).abs() <= 1e-9 * oracle.abs().max(1.0));
    }

    let value = acc.get();
    Ok((
        value,
        AppRun {
            name: format!("reduce/{op:?}"),
            report: rt.report(),
            verified,
            checksum: Some(value),
        },
    ))
}

/// Streaming out-of-core `y = a*x + b` written back to a second file.
pub fn map_northup(
    cfg: &StreamConfig,
    a: f32,
    b: f32,
    tree: Tree,
    mode: ExecMode,
) -> Result<AppRun> {
    let rt = Runtime::new(tree, mode)?;
    let root = rt.tree().root();
    let bytes = cfg.elements * 4;
    let x_file = rt.alloc(bytes, root)?;
    let y_file = rt.alloc(bytes, root)?;

    let host = when_real(mode, || {
        let data = cfg.host_input();
        rt.write_slice(x_file, 0, &f32s_to_bytes(&data))?;
        Ok(data)
    })?;

    let stage = *rt.tree().children(root).first().expect("staging level");
    let gpu = rt
        .tree()
        .node(stage)
        .procs
        .iter()
        .find(|p| p.kind == ProcKind::Gpu)
        .expect("map runs on the staging GPU");
    let gpu_model = model_for(&gpu.name);

    let pipe = ChunkPipeline::new(&rt, stage, cfg.ring, &[cfg.chunk * 4, cfg.chunk * 4])?;
    pipe.run(
        &cfg.chunks(),
        |&(off, n), bufs| {
            rt.move_data(bufs[0], 0, x_file, off * 4, n * 4)?;
            Ok(())
        },
        |&(off, n), bufs| {
            let dur = gpu_model.roofline(2.0 * n as f64, n as f64 * 8.0);
            rt.charge_compute(
                stage,
                ProcKind::Gpu,
                dur,
                &[bufs[0]],
                &[bufs[1]],
                "axpb chunk",
            )?;
            if mode == ExecMode::Real {
                let mut raw = vec![0u8; (n * 4) as usize];
                rt.read_slice(bufs[0], 0, &mut raw)?;
                let out: Vec<f32> = bytes_to_f32s(&raw).iter().map(|&v| a * v + b).collect();
                rt.write_slice(bufs[1], 0, &f32s_to_bytes(&out))?;
            }
            rt.move_data(y_file, off * 4, bufs[1], 0, n * 4)?;
            Ok(())
        },
    )?;
    pipe.release()?;

    let mut verified = None;
    if let Some(host) = host {
        let mut raw = vec![0u8; bytes as usize];
        rt.read_slice(y_file, 0, &mut raw)?;
        let got = bytes_to_f32s(&raw);
        verified = Some(
            host.iter()
                .zip(&got)
                .all(|(&x, &y)| (a * x + b - y).abs() < 1e-5),
        );
    }

    Ok(AppRun {
        name: "map/axpb".into(),
        report: rt.report(),
        verified,
        checksum: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use northup_hw::catalog;
    use northup_sim::Category;

    fn apu() -> Tree {
        northup::presets::apu_two_level(catalog::ssd_hyperx_predator())
    }

    #[test]
    fn sum_and_max_verify() {
        let cfg = StreamConfig::small();
        let (_, run) = reduce_northup(&cfg, ReduceOp::Sum, apu(), ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true));
        let (m, run) = reduce_northup(&cfg, ReduceOp::Max, apu(), ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true));
        assert!(m <= 1.0 && m > 0.9, "values live in [-1, 1): {m}");
    }

    #[test]
    fn map_verifies_and_writes_back() {
        let cfg = StreamConfig::small();
        let run = map_northup(&cfg, 2.5, -0.5, apu(), ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true));
        // One read + one write per chunk, plus setup.
        let io = run
            .report
            .io
            .iter()
            .find(|(n, _)| n == "hyperx-predator")
            .map(|(_, t)| *t)
            .unwrap();
        assert_eq!(io.bytes_read, cfg.elements * 4);
        assert_eq!(io.bytes_written, cfg.elements * 4);
    }

    #[test]
    fn ragged_final_chunk_is_handled() {
        let cfg = StreamConfig {
            elements: 1_000, // not a multiple of 256
            chunk: 256,
            ring: 2,
            seed: 9,
        };
        let (_, run) = reduce_northup(&cfg, ReduceOp::Sum, apu(), ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true));
    }

    #[test]
    fn paper_scale_reduction_is_io_bound() {
        // A pure stream can't hide its I/O: makespan ~ read time.
        let cfg = StreamConfig::paper();
        let (_, run) = reduce_northup(&cfg, ReduceOp::Sum, apu(), ExecMode::Modeled).unwrap();
        let read_time = (cfg.elements * 4) as f64 / 1.4e9;
        let makespan = run.makespan().as_secs_f64();
        assert!(
            (read_time * 0.95..read_time * 1.3).contains(&makespan),
            "makespan {makespan:.2} vs pure read {read_time:.2}"
        );
        assert!(run.report.breakdown.get(Category::FileIo).as_secs_f64() > 0.9 * read_time);
    }

    #[test]
    fn single_chunk_stream_works() {
        let cfg = StreamConfig {
            elements: 100,
            chunk: 1_000,
            ring: 2,
            seed: 1,
        };
        let (_, run) = reduce_northup(&cfg, ReduceOp::Max, apu(), ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true));
    }
}
