//! Application run results and comparison helpers.

use northup::RunReport;
use northup_sim::{Category, SimDur};
use serde::{Deserialize, Serialize};

/// Result of one application run (baseline or Northup).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppRun {
    /// Scenario label ("matmul/northup/ssd").
    pub name: String,
    /// Full runtime report (breakdown, I/O, utilization).
    pub report: RunReport,
    /// `Some(true)` when Real-mode output matched the reference oracle.
    pub verified: Option<bool>,
    /// Order-independent checksum of the result (Real mode).
    pub checksum: Option<f64>,
}

impl AppRun {
    /// Virtual makespan of the run.
    pub fn makespan(&self) -> SimDur {
        self.report.makespan()
    }

    /// Normalized runtime against a baseline run (the paper's Fig. 6 bars:
    /// > 1 means slower than the baseline).
    pub fn slowdown_vs(&self, baseline: &AppRun) -> f64 {
        let b = baseline.makespan().as_secs_f64();
        if b == 0.0 {
            return f64::INFINITY;
        }
        self.makespan().as_secs_f64() / b
    }

    /// Breakdown share of a category (Figs. 7/8 bars).
    pub fn share(&self, c: Category) -> f64 {
        self.report.share(c)
    }

    /// One-line textual summary.
    pub fn summary(&self) -> String {
        let b = &self.report.breakdown;
        format!(
            "{:<28} {:>10}  cpu {:>5.1}%  gpu {:>5.1}%  setup {:>5.1}%  io {:>5.1}%  xfer {:>5.1}%{}",
            self.name,
            format!("{}", self.makespan()),
            100.0 * b.share(Category::CpuCompute),
            100.0 * b.share(Category::GpuCompute),
            100.0 * b.share(Category::BufferSetup),
            100.0 * (b.share(Category::FileIo) + b.share(Category::MemCopy)),
            100.0 * b.share(Category::DeviceTransfer),
            match self.verified {
                Some(true) => "  [verified]",
                Some(false) => "  [MISMATCH]",
                None => "",
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use northup_sim::{SimTime, Timeline};

    fn run(secs: f64) -> AppRun {
        let mut tl = Timeline::new();
        tl.record(
            SimTime::ZERO,
            SimTime::from_secs_f64(secs),
            Category::GpuCompute,
            "x",
        );
        AppRun {
            name: "t".into(),
            report: RunReport {
                breakdown: tl.breakdown(),
                io: vec![],
                utilization: vec![],
            },
            verified: None,
            checksum: None,
        }
    }

    #[test]
    fn slowdown_is_a_ratio() {
        let base = run(2.0);
        let slow = run(5.0);
        assert!((slow.slowdown_vs(&base) - 2.5).abs() < 1e-9);
        assert!((base.slowdown_vs(&base) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_baseline_is_infinite() {
        assert!(run(1.0).slowdown_vs(&run(0.0)).is_infinite());
    }

    #[test]
    fn summary_mentions_name_and_time() {
        let r = run(1.5);
        let s = r.summary();
        assert!(s.contains('t'));
        assert!(s.contains("1.500s"));
    }
}
