//! Property tests for the SLO overload controller:
//!
//! (a) shedding never touches the guaranteed class — no Interactive job
//!     is ever evicted or declined by the controller,
//! (b) degraded (browned-out) runs never violate the capacity envelope:
//!     brownout shrinks chunk work, never reservations, so every
//!     committed-bytes invariant still holds,
//! (c) control decisions are bit-identical across double runs — the
//!     controller is a pure function of virtual time and seeded state,
//! (d) every arrival is accounted for: terminal states partition the
//!     trace and the typed rejection reasons partition the rejections,
//!     with the shed log matching the shed-reason count exactly.

use northup::presets;
use northup_hw::catalog;
use northup_sched::{
    AdmissionPolicy, JobScheduler, JobSpec, JobState, JobWork, Priority, RejectReason, Reservation,
    SchedReport, SchedulerConfig, SloConfig,
};
use northup_sim::{SimDur, SimTime};
use proptest::prelude::*;

/// (dram fraction, chunks, priority index, arrival µs).
type JobTuple = (f64, u32, usize, u64);

fn job_strategy() -> impl Strategy<Value = JobTuple> {
    (0.05f64..0.95, 0u32..6, 0usize..3, 0u64..30_000)
}

/// (target µs, batch cap, shed per tick, autoscale) — tight targets so
/// small generated traces still push the controller through its tiers.
type SloTuple = (u64, u32, u32, bool);

fn slo_strategy() -> impl Strategy<Value = SloTuple> {
    (500u64..50_000, 1u32..6, 1u32..16, any::<bool>())
}

fn slo_config(&(target_us, batch_cap, shed_per_tick, autoscale): &SloTuple) -> SloConfig {
    let mut slo = SloConfig::default().interactive_target(SimDur::from_micros(target_us));
    slo.tick = SimDur::from_millis(1);
    slo.batch_cap = batch_cap;
    slo.shed_per_tick = shed_per_tick;
    if autoscale {
        slo = slo.with_autoscale(300);
    }
    slo
}

fn build(trace: &[JobTuple], slo: Option<SloConfig>, preempt: bool) -> SchedReport {
    let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
    let dram = tree.children(tree.root())[0];
    let budget = tree.node(dram).mem.capacity;
    let mut sched = JobScheduler::new(
        tree,
        SchedulerConfig {
            policy: AdmissionPolicy::WeightedFair,
            max_queue: 6,
            preempt,
            slo,
            ..SchedulerConfig::default()
        },
    );
    for (i, &(frac, chunks, prio, arrival_us)) in trace.iter().enumerate() {
        sched.submit(
            JobSpec::new(
                format!("s{i}"),
                Reservation::new().with(dram, (budget as f64 * frac) as u64),
                JobWork::new(chunks)
                    .read(8 << 20)
                    .xfer(8 << 20)
                    .compute(SimDur::from_micros(500)),
            )
            .priority(Priority::ALL[prio])
            .arrival(SimTime::from_secs_f64(arrival_us as f64 * 1e-6)),
        );
    }
    sched.run().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shedding_never_touches_the_guaranteed_class(
        trace in prop::collection::vec(job_strategy(), 0..14),
        slo in slo_strategy(),
    ) {
        let report = build(&trace, Some(slo_config(&slo)), false);
        for shed in &report.shed_log {
            prop_assert_ne!(shed.class, Priority::Interactive);
        }
        for out in &report.jobs {
            if out.priority == Priority::Interactive {
                prop_assert!(
                    !matches!(
                        out.reject_reason,
                        Some(RejectReason::Shed) | Some(RejectReason::QuotaExceeded)
                    ),
                    "{} carries a shed reason", out.name
                );
            }
        }
    }

    #[test]
    fn degraded_runs_never_violate_the_capacity_envelope(
        trace in prop::collection::vec(job_strategy(), 0..14),
        slo in slo_strategy(),
        preempt in any::<bool>(),
    ) {
        let report = build(&trace, Some(slo_config(&slo)), preempt);
        let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
        let dram = tree.children(tree.root())[0];
        let budget = tree.node(dram).mem.capacity;
        // Autoscale may legitimately raise budgets; the envelope is the
        // scaled ceiling, never more.
        let ceiling = budget.saturating_mul(3);
        let scaled = report.slo_log.iter().any(|s| s.scale_pct > 100);
        for s in &report.capacity_trace {
            let cap = if scaled { ceiling } else { budget };
            prop_assert!(
                s.committed <= cap,
                "node {:?} committed {} > envelope {}",
                s.node, s.committed, cap
            );
        }
        for (node, peak) in report.max_committed_pairs() {
            let base = tree.node(node).mem.capacity;
            let cap = if scaled { base.saturating_mul(3) } else { base };
            prop_assert!(peak <= cap);
        }
    }

    #[test]
    fn control_decisions_are_bit_identical_across_runs(
        trace in prop::collection::vec(job_strategy(), 0..14),
        slo in slo_strategy(),
        preempt in any::<bool>(),
    ) {
        let a = build(&trace, Some(slo_config(&slo)), preempt);
        let b = build(&trace, Some(slo_config(&slo)), preempt);
        prop_assert_eq!(format!("{:?}", a.slo_log), format!("{:?}", b.slo_log));
        prop_assert_eq!(format!("{:?}", a.shed_log), format!("{:?}", b.shed_log));
        prop_assert_eq!(&a.admission_order, &b.admission_order);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.capacity_needed_pct, b.capacity_needed_pct);
    }

    #[test]
    fn every_arrival_is_accounted_for(
        trace in prop::collection::vec(job_strategy(), 0..14),
        slo in slo_strategy(),
    ) {
        let report = build(&trace, Some(slo_config(&slo)), false);
        prop_assert!(report.all_terminal());
        let settled = report.count(JobState::Done)
            + report.count(JobState::Failed)
            + report.count(JobState::Rejected)
            + report.count(JobState::Cancelled);
        prop_assert_eq!(settled, trace.len(), "terminal states partition the trace");
        let by_reason: usize = RejectReason::ALL
            .iter()
            .map(|&r| report.rejected_for(r))
            .sum();
        prop_assert_eq!(
            by_reason,
            report.count(JobState::Rejected),
            "typed reasons partition the rejections"
        );
        // Without tenant quotas every shed is reason `Shed`, and the
        // shed log records exactly those jobs.
        prop_assert_eq!(report.rejected_for(RejectReason::QuotaExceeded), 0);
        prop_assert_eq!(report.shed_log.len(), report.rejected_for(RejectReason::Shed));
    }
}
