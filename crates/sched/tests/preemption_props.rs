//! Property tests for chunk-granular preemption, live budget
//! reconfiguration, and per-tenant quotas:
//!
//! (a) every chunk executes exactly once — across any number of
//!     evict/resume cycles, a job's chunk log is a duplicate-free prefix
//!     `0..chunks_done`, and `Done` jobs complete every declared chunk;
//! (b) committed bytes never exceed the budget *envelope* — the largest
//!     budget in force up to that instant (a drain-mode shrink lets
//!     admitted jobs finish but never grows the commitment);
//! (c) the schedule stays bit-identical with preemption, resizes, and
//!     quotas all enabled;
//! (d) preemptions conserve capacity accounting: each `Preempted`
//!     admission-log event pairs with a preceding `Admitted` for the
//!     same job, and evicted jobs are re-admitted or rejected, never
//!     lost.

use northup::presets;
use northup_hw::catalog;
use northup_sched::{
    AdmissionEventKind, JobScheduler, JobSpec, JobState, JobWork, NodeBudgets, Priority,
    Reservation, ResizeDrain, SchedReport, SchedulerConfig, TenantId, TenantQuota,
};
use northup_sim::{SimDur, SimTime};
use proptest::prelude::*;

/// (dram fraction, chunks, priority index, arrival µs, tenant).
type JobTuple = (f64, u32, usize, u64, u32);
/// (resize µs, budget factor).
type ResizeTuple = (u64, f64);

fn job_strategy() -> impl Strategy<Value = JobTuple> {
    (0.05f64..0.95, 0u32..6, 0usize..3, 0u64..5_000, 0u32..3)
}

fn resize_strategy() -> impl Strategy<Value = ResizeTuple> {
    (0u64..50_000, 0.3f64..1.0)
}

struct Scenario {
    report: SchedReport,
    chunks_declared: Vec<u32>,
}

fn build(
    trace: &[JobTuple],
    resizes: &[ResizeTuple],
    drain: ResizeDrain,
    quota: Option<TenantQuota>,
) -> Scenario {
    let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
    let dram = tree.children(tree.root())[0];
    let budget = tree.node(dram).mem.capacity;
    let full = NodeBudgets::from_tree(&tree, 1.0);
    let mut sched = JobScheduler::new(
        tree,
        SchedulerConfig {
            preempt: true,
            resize_drain: drain,
            tenant_quota: quota,
            ..SchedulerConfig::default()
        },
    );
    let mut chunks_declared = Vec::new();
    for (i, &(frac, chunks, prio, arrival_us, tenant)) in trace.iter().enumerate() {
        chunks_declared.push(chunks);
        sched.submit(
            JobSpec::new(
                format!("p{i}"),
                Reservation::new().with(dram, (budget as f64 * frac) as u64),
                JobWork::new(chunks)
                    .read(8 << 20)
                    .xfer(8 << 20)
                    .compute(SimDur::from_micros(500)),
            )
            .priority(Priority::ALL[prio])
            .tenant(TenantId(tenant))
            .arrival(SimTime::from_secs_f64(arrival_us as f64 * 1e-6)),
        );
    }
    for &(at_us, factor) in resizes {
        sched.resize_budgets(
            SimTime::from_secs_f64(at_us as f64 * 1e-6),
            full.scaled(factor),
        );
    }
    Scenario {
        report: sched.run().unwrap(),
        chunks_declared,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_chunk_executes_exactly_once(
        trace in prop::collection::vec(job_strategy(), 0..12),
        resizes in prop::collection::vec(resize_strategy(), 0..3),
    ) {
        let sc = build(&trace, &resizes, ResizeDrain::Preempt, None);
        prop_assert!(sc.report.all_terminal());
        for (i, j) in sc.report.jobs.iter().enumerate() {
            let mut seen: Vec<u32> = sc.report.chunk_log.iter()
                .filter(|c| c.job == j.id)
                .map(|c| c.index)
                .collect();
            seen.sort_unstable();
            // A duplicate-free prefix 0..chunks_done, whatever mixture of
            // evictions and resumes the job went through.
            let expect: Vec<u32> = (0..j.chunks_done).collect();
            prop_assert_eq!(
                &seen, &expect,
                "job {} (state {:?}, {} preemptions) chunk log mismatch",
                j.name, j.state, j.preemptions
            );
            if j.state == JobState::Done {
                prop_assert_eq!(j.chunks_done, sc.chunks_declared[i]);
            }
        }
    }

    #[test]
    fn committed_never_exceeds_the_budget_envelope(
        trace in prop::collection::vec(job_strategy(), 0..12),
        resizes in prop::collection::vec(resize_strategy(), 0..3),
        preempt_drain in any::<bool>(),
    ) {
        let drain = if preempt_drain { ResizeDrain::Preempt } else { ResizeDrain::Drain };
        let sc = build(&trace, &resizes, drain, None);
        let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
        for s in &sc.report.capacity_trace {
            // The envelope at s.at: the largest budget in force at any
            // instant up to s.at (initial budgets = full capacity).
            let mut envelope = tree.node(s.node).mem.capacity;
            let shrunk = sc.report.resize_log.iter()
                .filter(|r| r.at <= s.at)
                .map(|r| r.budgets[s.node.0])
                .max();
            if let Some(m) = shrunk {
                envelope = envelope.max(m);
            }
            prop_assert!(
                s.committed <= envelope,
                "node {:?} committed {} > envelope {} at {:?}",
                s.node, s.committed, envelope, s.at
            );
        }
    }

    #[test]
    fn schedule_is_bit_identical_with_all_features_on(
        trace in prop::collection::vec(job_strategy(), 0..10),
        resizes in prop::collection::vec(resize_strategy(), 0..2),
    ) {
        let quota = Some(TenantQuota::new(1e15, 1e12));
        let s1 = build(&trace, &resizes, ResizeDrain::Preempt, quota);
        let s2 = build(&trace, &resizes, ResizeDrain::Preempt, quota);
        prop_assert_eq!(&s1.report.admission_order, &s2.report.admission_order);
        prop_assert_eq!(s1.report.makespan, s2.report.makespan);
        prop_assert_eq!(&s1.report.chunk_log, &s2.report.chunk_log);
        prop_assert_eq!(&s1.report.capacity_trace, &s2.report.capacity_trace);
        for (a, b) in s1.report.jobs.iter().zip(s2.report.jobs.iter()) {
            prop_assert_eq!(a.state, b.state);
            prop_assert_eq!(a.finished_at, b.finished_at);
            prop_assert_eq!(a.preemptions, b.preemptions);
        }
    }

    #[test]
    fn preemptions_conserve_admission_accounting(
        trace in prop::collection::vec(job_strategy(), 0..12),
    ) {
        let sc = build(&trace, &[], ResizeDrain::Drain, None);
        prop_assert!(sc.report.all_terminal());
        for j in &sc.report.jobs {
            let admits = sc.report.admission_log.iter()
                .filter(|e| e.job == j.id && e.kind == AdmissionEventKind::Admitted)
                .count();
            let preempts = sc.report.admission_log.iter()
                .filter(|e| e.job == j.id && e.kind == AdmissionEventKind::Preempted)
                .count();
            let releases = sc.report.admission_log.iter()
                .filter(|e| e.job == j.id && e.kind == AdmissionEventKind::Released)
                .count();
            prop_assert_eq!(preempts, j.preemptions as usize);
            // Every admission ends in exactly one eviction or release,
            // and nothing is released that was never admitted.
            prop_assert_eq!(admits, preempts + releases);
            prop_assert!(releases <= 1);
            // An evicted-then-rejected job keeps its partial progress.
            if j.state == JobState::Done || j.preemptions > 0 {
                prop_assert!(admits >= 1);
            }
        }
    }

    #[test]
    fn quota_throttled_traces_still_terminate_deterministically(
        trace in prop::collection::vec(job_strategy(), 0..10),
        burst_gb in 0.01f64..2.0,
    ) {
        let quota = Some(TenantQuota::new(burst_gb * 1e9, 0.5e9));
        let s1 = build(&trace, &[], ResizeDrain::Drain, quota);
        let s2 = build(&trace, &[], ResizeDrain::Drain, quota);
        prop_assert!(s1.report.all_terminal());
        prop_assert_eq!(&s1.report.admission_order, &s2.report.admission_order);
        prop_assert_eq!(s1.report.makespan, s2.report.makespan);
    }
}
