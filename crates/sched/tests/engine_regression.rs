//! Fixed-seed schedule bit-identity regression (ISSUE 7 satellite).
//!
//! The digests below were captured against the pre-rewrite
//! `BinaryHeap` engine and pinned; the calendar-queue engine must
//! reproduce every one bit-for-bit. Unlike the CI `sched_engine` gate
//! this runs in tier-1 `cargo test` with its own local trace generator
//! (no dependency on `northup-apps`), so any event-order drift in the
//! engine fails the ordinary test suite, not just the bench gate.

use northup::{presets, FaultPlan};
use northup_hw::catalog;
use northup_sched::{
    report_digest, JobScheduler, JobSpec, JobWork, NodeBudgets, Priority, Probation, Reservation,
    SchedulerConfig, TenantId, TenantQuota,
};
use northup_sim::{SimDur, SimTime};

/// Digests of the pre-rewrite engine (printed once by running these
/// tests against it, then pinned).
const CLEAN_32: u64 = 0xe6f0_0cb9_98d4_ab9b;
const CLEAN_10K: u64 = 0xe1be_a4e5_641f_0002;
const CHAOS_2K: u64 = 0x5c09_b351_d387_0e67;

/// splitmix64: the same tiny deterministic generator the digest mixer
/// uses, so the trace is stable across platforms and rand versions.
fn mix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn run(jobs: usize, cfg: SchedulerConfig, chaos: bool) -> u64 {
    let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
    let dram = tree.children(tree.root())[0];
    let budget = tree.node(dram).mem.capacity;
    let mut sched = JobScheduler::new(tree.clone(), cfg);
    let mut s = 0x6b8b_4567_3272_5b02u64 ^ jobs as u64;
    let mut arrival_us = 0u64;
    for i in 0..jobs {
        arrival_us += mix(&mut s) % 700;
        let frac = 0.05 + (mix(&mut s) % 900) as f64 / 1000.0;
        let chunks = (mix(&mut s) % 5) as u32;
        let prio = Priority::ALL[(mix(&mut s) % 3) as usize];
        let mut spec = JobSpec::new(
            format!("r{i}"),
            Reservation::new().with(dram, (budget as f64 * frac) as u64),
            JobWork::new(chunks)
                .read(8 << 20)
                .xfer(8 << 20)
                .compute(SimDur::from_micros(200 + mix(&mut s) % 600)),
        )
        .priority(prio)
        .arrival(SimTime::from_secs_f64(arrival_us as f64 * 1e-6));
        if chaos {
            spec = spec.tenant(TenantId((i % 3) as u32));
            if mix(&mut s).is_multiple_of(16) {
                spec = spec.cancel_at(SimTime::from_secs_f64(
                    (arrival_us + 1 + mix(&mut s) % 30_000) as f64 * 1e-6,
                ));
            }
        }
        sched.submit(spec);
    }
    if chaos {
        let full = NodeBudgets::from_tree(&tree, 1.0);
        sched.resize_budgets(SimTime::from_secs_f64(0.1), full.scaled(0.7));
        sched.resize_budgets(SimTime::from_secs_f64(0.4), full);
    }
    report_digest(&sched.run().unwrap())
}

fn clean_cfg() -> SchedulerConfig {
    SchedulerConfig {
        max_queue: 512,
        ..SchedulerConfig::default()
    }
}

fn chaos_cfg() -> SchedulerConfig {
    SchedulerConfig {
        max_queue: 512,
        preempt: true,
        tenant_quota: Some(TenantQuota::new(24e9, 12e9)),
        fault_plan: Some(FaultPlan::new(7).transient_rate(300).persistent_rate(20)),
        quarantine_after: 3,
        probation: Some(Probation::default()),
        ..SchedulerConfig::default()
    }
}

#[test]
fn schedule_bits_identical_32_jobs() {
    assert_eq!(
        run(32, clean_cfg(), false),
        CLEAN_32,
        "32-job schedule digest drifted from the pre-rewrite engine"
    );
}

#[test]
fn schedule_bits_identical_10k_jobs() {
    assert_eq!(
        run(10_000, clean_cfg(), false),
        CLEAN_10K,
        "10k-job schedule digest drifted from the pre-rewrite engine"
    );
}

#[test]
fn schedule_bits_identical_chaos_2k_jobs() {
    assert_eq!(
        run(2_000, chaos_cfg(), true),
        CHAOS_2K,
        "2k-job chaos schedule digest drifted from the pre-rewrite engine"
    );
}
