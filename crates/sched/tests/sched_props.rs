//! Property tests for the scheduler invariants:
//!
//! (a) admitted reservations never exceed any node's budget at any
//!     virtual instant,
//! (b) every submitted job reaches a terminal state,
//! (c) the schedule is deterministic — the same trace produces the same
//!     admission order and makespan.

use northup::presets;
use northup_hw::catalog;
use northup_sched::{
    AdmissionPolicy, JobScheduler, JobSpec, JobWork, Priority, Reservation, SchedReport,
    SchedulerConfig,
};
use northup_sim::{SimDur, SimTime};
use proptest::prelude::*;

/// (dram fraction, chunks, priority index, arrival µs, cancel µs or 0).
type JobTuple = (f64, u32, usize, u64, u64);

fn job_strategy() -> impl Strategy<Value = JobTuple> {
    (0.05f64..0.95, 0u32..5, 0usize..3, 0u64..5_000, 0u64..40_000)
}

fn build(trace: &[JobTuple], policy: AdmissionPolicy, max_queue: usize) -> SchedReport {
    let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
    let dram = tree.children(tree.root())[0];
    let budget = tree.node(dram).mem.capacity;
    let mut sched = JobScheduler::new(
        tree,
        SchedulerConfig {
            policy,
            max_queue,
            ..SchedulerConfig::default()
        },
    );
    for (i, &(frac, chunks, prio, arrival_us, cancel_us)) in trace.iter().enumerate() {
        let mut spec = JobSpec::new(
            format!("p{i}"),
            Reservation::new().with(dram, (budget as f64 * frac) as u64),
            JobWork::new(chunks)
                .read(8 << 20)
                .xfer(8 << 20)
                .compute(SimDur::from_micros(500)),
        )
        .priority(Priority::ALL[prio])
        .arrival(SimTime::from_secs_f64(arrival_us as f64 * 1e-6));
        if cancel_us > 0 {
            spec = spec.cancel_at(SimTime::from_secs_f64(cancel_us as f64 * 1e-6));
        }
        sched.submit(spec);
    }
    sched.run().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn committed_never_exceeds_budget(
        trace in prop::collection::vec(job_strategy(), 0..14),
        fifo in any::<bool>(),
    ) {
        let policy = if fifo { AdmissionPolicy::Fifo } else { AdmissionPolicy::WeightedFair };
        let report = build(&trace, policy, 8);
        let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
        let dram = tree.children(tree.root())[0];
        let budget = tree.node(dram).mem.capacity;
        for s in &report.capacity_trace {
            prop_assert!(
                s.committed <= budget,
                "node {:?} committed {} > budget {}",
                s.node, s.committed, budget
            );
        }
        for (node, peak) in report.max_committed_pairs() {
            prop_assert!(peak <= tree.node(node).mem.capacity);
        }
    }

    #[test]
    fn every_job_reaches_a_terminal_state(
        trace in prop::collection::vec(job_strategy(), 0..14),
    ) {
        let report = build(&trace, AdmissionPolicy::WeightedFair, 6);
        prop_assert!(report.all_terminal());
        for j in &report.jobs {
            prop_assert!(j.finished_at.is_some(), "{} has no finish time", j.name);
        }
    }

    #[test]
    fn same_trace_is_bit_identical(
        trace in prop::collection::vec(job_strategy(), 0..12),
    ) {
        let r1 = build(&trace, AdmissionPolicy::WeightedFair, 8);
        let r2 = build(&trace, AdmissionPolicy::WeightedFair, 8);
        prop_assert_eq!(&r1.admission_order, &r2.admission_order);
        prop_assert_eq!(r1.makespan, r2.makespan);
        prop_assert_eq!(r1.capacity_trace.len(), r2.capacity_trace.len());
        for (a, b) in r1.jobs.iter().zip(r2.jobs.iter()) {
            prop_assert_eq!(a.state, b.state);
            prop_assert_eq!(a.finished_at, b.finished_at);
        }
    }
}
