//! Property tests for the calendar event queue: against a `BinaryHeap`
//! oracle, [`CalendarQueue`] must be a drop-in replacement — every
//! interleaving of pushes and pops yields the heap's exact pop order,
//! regardless of how the events land in ring buckets, the overflow
//! tier, or the past-time clamp path.

use northup_sched::CalendarQueue;
use northup_sim::SimTime;
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

type Ev = (SimTime, u8, u64, u64);

/// (µs offset, kind, id) — compressed so shrinking stays readable.
/// Offsets span six decades so cases hit the active bucket, the ring,
/// and the overflow tier; kinds/ids supply tie-breaking dimensions.
fn event_strategy() -> impl Strategy<Value = (u64, u8, u64)> {
    (0u64..3_000_000, 0u8..7, 0u64..50)
}

/// An op script: `Push(ev)` or `Pop` (pop on an empty queue is a no-op
/// on both sides).
#[derive(Debug, Clone)]
enum Op {
    Push((u64, u8, u64)),
    Pop,
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            event_strategy().prop_map(Op::Push),
            event_strategy().prop_map(Op::Push),
            event_strategy().prop_map(Op::Push),
            Just(Op::Pop),
            Just(Op::Pop),
        ],
        0..400,
    )
}

fn ev(raw: (u64, u8, u64), seq: u64) -> Ev {
    (
        SimTime::from_secs_f64(raw.0 as f64 * 1e-6),
        raw.1,
        raw.2,
        seq,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of pushes and pops matches the heap, pop for pop.
    #[test]
    fn pop_order_matches_binary_heap(ops in ops_strategy()) {
        let mut cal = CalendarQueue::new();
        let mut heap: BinaryHeap<Reverse<Ev>> = BinaryHeap::new();
        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Push(raw) => {
                    // The seq component makes every event unique, so the
                    // orders are fully determined and comparable.
                    let e = ev(*raw, i as u64);
                    cal.push(e);
                    heap.push(Reverse(e));
                }
                Op::Pop => {
                    prop_assert_eq!(cal.pop(), heap.pop().map(|Reverse(e)| e));
                }
            }
            prop_assert_eq!(cal.len(), heap.len());
        }
        while let Some(Reverse(e)) = heap.pop() {
            prop_assert_eq!(cal.pop(), Some(e));
        }
        prop_assert!(cal.is_empty());
    }

    /// `peek` agrees with the next `pop` and disturbs nothing.
    #[test]
    fn peek_is_consistent_with_pop(raws in prop::collection::vec(event_strategy(), 1..200)) {
        let mut cal = CalendarQueue::new();
        for (i, raw) in raws.iter().enumerate() {
            cal.push(ev(*raw, i as u64));
        }
        let mut last = None;
        while !cal.is_empty() {
            let peeked = cal.peek();
            let popped = cal.pop();
            prop_assert_eq!(peeked, popped);
            if let (Some(prev), Some(cur)) = (last, popped) {
                prop_assert!(prev <= cur, "pops went backwards: {prev:?} then {cur:?}");
            }
            last = popped;
        }
    }
}
