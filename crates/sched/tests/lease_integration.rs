//! End-to-end capacity-lease enforcement: an admitted job's reservation,
//! installed on a `northup::Runtime`, bounds what `Ctx::alloc` may draw
//! on each node — and releases credit the lease back.

use northup::{presets, ExecMode, NodeId, NorthupError, Runtime};
use northup_hw::catalog;
use northup_sched::{JobScheduler, JobSpec, JobState, JobWork, Reservation, SchedulerConfig};

#[test]
fn admitted_lease_bounds_ctx_alloc() {
    let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
    let dram = tree.children(tree.root())[0];

    // Admit a job reserving 64 MiB of DRAM staging and take its lease.
    let mut sched = JobScheduler::new(tree.clone(), SchedulerConfig::default());
    let id = sched.submit(JobSpec::new(
        "svc",
        Reservation::new().with(dram, 64 << 20),
        JobWork::new(1).read(1 << 20).xfer(1 << 20),
    ));
    let report = sched.run().unwrap();
    assert_eq!(report.job(id).state, JobState::Done);
    let lease = report.job(id).lease().expect("admitted job has a lease");

    let rt = Runtime::new(tree, ExecMode::Real).unwrap();
    rt.install_lease(lease.clone());
    let ctx = rt.ctx_at(dram);

    let a = ctx
        .alloc(48 << 20)
        .expect("within the admitted reservation");
    assert_eq!(lease.used(dram), 48 << 20);

    // 48 + 32 > 64 MiB: the lease, not the device, rejects this.
    match ctx.alloc(32 << 20) {
        Err(NorthupError::LeaseExceeded {
            node,
            requested,
            remaining,
        }) => {
            assert_eq!(node, dram);
            assert_eq!(requested, 32 << 20);
            assert_eq!(remaining, 16 << 20);
        }
        other => panic!("expected LeaseExceeded, got {other:?}"),
    }

    // Releasing credits the lease; the same allocation now succeeds.
    rt.release(a).unwrap();
    assert_eq!(lease.used(dram), 0);
    let b = ctx.alloc(32 << 20).expect("fits after release");
    rt.release(b).unwrap();

    // Nodes outside the reservation stay unconstrained.
    let root_buf = rt.ctx_at(NodeId(0)).alloc(1 << 20);
    assert!(root_buf.is_ok());

    rt.clear_lease();
    let c = ctx.alloc(128 << 20).expect("unbounded after clear_lease");
    rt.release(c).unwrap();
}

#[test]
fn unadmitted_jobs_have_no_lease() {
    let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
    let dram = tree.children(tree.root())[0];
    let too_big = tree.node(dram).mem.capacity + 1;
    let mut sched = JobScheduler::new(tree, SchedulerConfig::default());
    let id = sched.submit(JobSpec::new(
        "whale",
        Reservation::new().with(dram, too_big),
        JobWork::new(1),
    ));
    let report = sched.run().unwrap();
    assert_eq!(report.job(id).state, JobState::Rejected);
    assert!(report.job(id).lease().is_none());
}
