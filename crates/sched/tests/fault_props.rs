//! Property tests for the fault-tolerance layer: random seeded fault
//! plans (transient + persistent rates, scoped or global, random retry
//! and quarantine thresholds) driven over random job traces on the
//! multi-leaf Fig. 2 machine. Whatever the plan injects:
//!
//! (a) every job reaches a terminal state — retries are bounded, every
//!     persistent fault advances a node toward quarantine or a job toward
//!     its fault cap, and a fenced root fails the trace gracefully;
//! (b) no chunk ever executes twice — a job's chunk log stays a
//!     duplicate-free prefix `0..chunks_done` across any number of
//!     retries, fault evictions, and re-routed chains;
//! (c) the budget envelope holds under quarantine — committed bytes
//!     never exceed the node's capacity, and after a node is fenced its
//!     committed bytes never grow again;
//! (d) chaos replays bit-identically — same trace + same plan ⇒ the
//!     same report, fault log, and per-job fault accounting;
//! (e) admission accounting balances — every `Admitted` event pairs with
//!     exactly one `Released`, `Preempted`, or `FaultEvicted`.

use northup::presets;
use northup_sched::{
    AdmissionEventKind, FaultPlan, JobScheduler, JobSpec, JobState, JobWork, Priority, Reservation,
    RetryPolicy, SchedReport, SchedulerConfig, TenantId,
};
use northup_sim::{SimDur, SimTime};
use proptest::prelude::*;

/// (reserve fraction, chunks, priority index, arrival µs, tenant).
type JobTuple = (f64, u32, usize, u64, u32);
/// (seed, transient /64k, persistent /64k, quarantine_after, scoped).
type PlanTuple = (u64, u32, u32, u32, bool);

fn job_strategy() -> impl Strategy<Value = JobTuple> {
    (0.0f64..0.9, 0u32..6, 0usize..3, 0u64..5_000, 0u32..3)
}

fn plan_strategy() -> impl Strategy<Value = PlanTuple> {
    (
        any::<u64>(),
        0u32..12_000,
        0u32..2_000,
        1u32..4,
        any::<bool>(),
    )
}

fn make_plan(p: &PlanTuple) -> FaultPlan {
    let &(seed, transient, persistent, _, scoped) = p;
    let mut plan = FaultPlan::new(seed)
        .transient_rate(transient)
        .persistent_rate(persistent);
    if scoped {
        // Fence-able subtree: the NVM hop and its GPU leaf (Fig. 2).
        plan = plan.on_nodes([northup::NodeId(2), northup::NodeId(5)]);
    }
    plan
}

fn build(trace: &[JobTuple], p: &PlanTuple) -> SchedReport {
    let tree = presets::asymmetric_fig2();
    // Reserve on the shared staging level of subtree 3 so quarantine of
    // that node makes reservations infeasible for some scenarios.
    let reserve_node = northup::NodeId(3);
    let budget = tree.node(reserve_node).mem.capacity;
    let mut sched = JobScheduler::new(
        tree,
        SchedulerConfig {
            fault_plan: Some(make_plan(p)),
            retry: RetryPolicy {
                base_backoff: SimDur::from_micros(100),
                ..RetryPolicy::default()
            },
            quarantine_after: p.3,
            ..SchedulerConfig::default()
        },
    );
    for (i, &(frac, chunks, prio, arrival_us, tenant)) in trace.iter().enumerate() {
        let reservation = if frac < 0.1 {
            Reservation::new()
        } else {
            Reservation::new().with(reserve_node, (budget as f64 * frac) as u64)
        };
        sched.submit(
            JobSpec::new(
                format!("f{i}"),
                reservation,
                JobWork::new(chunks)
                    .read(8 << 20)
                    .xfer(8 << 20)
                    .compute(SimDur::from_micros(500))
                    .write(2 << 20),
            )
            .priority(Priority::ALL[prio])
            .tenant(TenantId(tenant))
            .arrival(SimTime::from_secs_f64(arrival_us as f64 * 1e-6)),
        );
    }
    sched.run().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn every_job_terminates_under_any_fault_plan(
        trace in prop::collection::vec(job_strategy(), 0..12),
        plan in plan_strategy(),
    ) {
        let report = build(&trace, &plan);
        prop_assert!(report.all_terminal());
        prop_assert_eq!(report.jobs.len(), trace.len());
        // Fault accounting is internally consistent.
        for j in &report.jobs {
            let logged = report.fault_log.iter()
                .filter(|f| f.job == j.id)
                .count() as u64;
            prop_assert_eq!(
                u64::from(j.fault.transient + j.fault.persistent), logged,
                "job {} fault counters disagree with the log", j.name
            );
            prop_assert!(u64::from(j.fault.retries) <= u64::from(j.fault.transient));
            if j.fault.retries > 0 {
                prop_assert!(j.fault.backoff > SimDur::ZERO);
            }
        }
    }

    #[test]
    fn no_chunk_executes_twice_under_faults(
        trace in prop::collection::vec(job_strategy(), 0..12),
        plan in plan_strategy(),
    ) {
        let report = build(&trace, &plan);
        for (i, j) in report.jobs.iter().enumerate() {
            let mut seen: Vec<u32> = report.chunk_log.iter()
                .filter(|c| c.job == j.id)
                .map(|c| c.index)
                .collect();
            seen.sort_unstable();
            let expect: Vec<u32> = (0..j.chunks_done).collect();
            prop_assert_eq!(
                &seen, &expect,
                "job {} ({:?}, {} reroutes): duplicate or missing chunk",
                &j.name, j.state, j.fault.reroutes
            );
            if j.state == JobState::Done {
                prop_assert_eq!(j.chunks_done, trace[i].1);
            }
        }
    }

    #[test]
    fn quarantine_respects_the_budget_envelope(
        trace in prop::collection::vec(job_strategy(), 0..12),
        plan in plan_strategy(),
    ) {
        let report = build(&trace, &plan);
        let tree = presets::asymmetric_fig2();
        for s in &report.capacity_trace {
            prop_assert!(
                s.committed <= tree.node(s.node).mem.capacity,
                "node {:?} over capacity at {:?}", s.node, s.at
            );
        }
        // Once a node is fenced nothing new commits on it: its committed
        // series is non-increasing from the quarantine instant on.
        for q in &report.quarantine_log {
            let mut last = None;
            for s in report.capacity_trace.iter()
                .filter(|s| s.node == q.node && s.at >= q.at)
            {
                if let Some(prev) = last {
                    prop_assert!(
                        s.committed <= prev,
                        "commit on fenced node {:?} grew at {:?}", q.node, s.at
                    );
                }
                last = Some(s.committed);
            }
        }
    }

    #[test]
    fn chaos_replays_bit_identically(
        trace in prop::collection::vec(job_strategy(), 0..10),
        plan in plan_strategy(),
    ) {
        let r1 = build(&trace, &plan);
        let r2 = build(&trace, &plan);
        prop_assert_eq!(&r1.admission_order, &r2.admission_order);
        prop_assert_eq!(r1.makespan, r2.makespan);
        prop_assert_eq!(&r1.chunk_log, &r2.chunk_log);
        prop_assert_eq!(&r1.fault_log, &r2.fault_log);
        prop_assert_eq!(&r1.quarantine_log, &r2.quarantine_log);
        prop_assert_eq!(&r1.capacity_trace, &r2.capacity_trace);
        for (a, b) in r1.jobs.iter().zip(r2.jobs.iter()) {
            prop_assert_eq!(a.state, b.state);
            prop_assert_eq!(a.finished_at, b.finished_at);
            prop_assert_eq!(&a.fault, &b.fault);
        }
    }

    #[test]
    fn fault_evictions_conserve_admission_accounting(
        trace in prop::collection::vec(job_strategy(), 0..12),
        plan in plan_strategy(),
    ) {
        let report = build(&trace, &plan);
        for j in &report.jobs {
            let count = |k: AdmissionEventKind| report.admission_log.iter()
                .filter(|e| e.job == j.id && e.kind == k)
                .count();
            let admits = count(AdmissionEventKind::Admitted);
            let releases = count(AdmissionEventKind::Released);
            let preempts = count(AdmissionEventKind::Preempted);
            let fault_evicts = count(AdmissionEventKind::FaultEvicted);
            prop_assert_eq!(
                admits, releases + preempts + fault_evicts,
                "job {} ({:?}): {} admits vs {} releases + {} preempts + {} fault evicts",
                &j.name, j.state, admits, releases, preempts, fault_evicts
            );
            prop_assert!(releases <= 1);
        }
    }
}
