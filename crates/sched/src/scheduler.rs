//! The multi-tenant job scheduler: admission control, weighted fair
//! queueing, placement, and the deterministic virtual-time co-simulation.
//!
//! [`JobScheduler`] accepts a batch of [`JobSpec`]s (an arrival trace),
//! then [`JobScheduler::run`] replays it event by event in virtual time:
//!
//! 1. **Arrival** — infeasible reservations and queue overflow are
//!    rejected (backpressure); everything else queues in its priority
//!    class.
//! 2. **Admission** — a weighted-fair pass over the class queues commits
//!    each admitted job's [`Reservation`] against the [`NodeBudgets`];
//!    the invariant `committed(node) ≤ budget(node)` holds at every
//!    virtual instant. A starvation guard blocks further bypasses once a
//!    class head has been overtaken `aging_limit` times.
//! 3. **Execution** — admitted jobs issue sequential chunks on the shared
//!    [`SimFabric`], so contention on root storage and links is visible
//!    in completion times. Placement picks the leaf whose subtree has the
//!    shallowest work queues (the paper's §V-E subtree-status check).
//! 4. **Release** — at a job's terminal transition its reservation is
//!    credited back and another admission pass runs.
//!
//! Everything is keyed on ordered integers (`SimTime`, event kind,
//! `JobId`), so one trace + one config ⇒ one schedule, bit for bit.

use crate::fabric::{SimFabric, Stage};
use crate::job::{JobId, JobSpec, JobState, Priority};
use crate::reserve::{NodeBudgets, Reservation};
use northup::{NodeId, Tree, WorkQueues};
use northup_sim::{SimDur, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};

/// How the scheduler decides which queued job to admit next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Weighted fair admission across priority classes with a starvation
    /// guard; concurrent jobs share the machine whenever their
    /// reservations co-fit.
    WeightedFair,
    /// Strict serial FIFO: one job owns the whole machine at a time
    /// (admitted only when nothing else is admitted or running). The
    /// baseline the bench compares against.
    Fifo,
}

/// Scheduler knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Fraction of each node's capacity the scheduler may commit
    /// (see [`NodeBudgets::from_tree`]).
    pub headroom: f64,
    /// Maximum jobs waiting across all class queues before arrivals are
    /// rejected (backpressure).
    pub max_queue: usize,
    /// Admission policy.
    pub policy: AdmissionPolicy,
    /// After a class head has been bypassed this many times, no
    /// lower-credit class may overtake it again until it admits.
    pub aging_limit: u32,
    /// Work queues per tree node fed to placement.
    pub queues_per_node: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            headroom: 1.0,
            max_queue: 64,
            policy: AdmissionPolicy::WeightedFair,
            aging_limit: 8,
            queues_per_node: 1,
        }
    }
}

/// One admission-log entry: capacity committed or released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionEvent {
    /// Virtual time of the transition.
    pub at: SimTime,
    /// The job whose reservation moved.
    pub job: JobId,
    /// Committed (admission) or credited back (terminal transition).
    pub kind: AdmissionEventKind,
}

/// Direction of an [`AdmissionEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionEventKind {
    /// The job's reservation was committed against the budgets.
    Admitted,
    /// The job's reservation was credited back.
    Released,
}

/// Committed bytes on one node right after an admission-log transition —
/// the raw series behind the "never exceeds budget" acceptance check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacitySample {
    /// Virtual time of the sample.
    pub at: SimTime,
    /// Sampled node.
    pub node: NodeId,
    /// Committed bytes on `node` after the transition.
    pub committed: u64,
}

/// Final per-job record in the [`SchedReport`].
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Job id (submission order).
    pub id: JobId,
    /// Submitter-chosen name.
    pub name: String,
    /// Admission class.
    pub priority: Priority,
    /// Terminal state (always terminal after `run`).
    pub state: JobState,
    /// Arrival time from the trace.
    pub arrival: SimTime,
    /// When the reservation was committed, if ever.
    pub admitted_at: Option<SimTime>,
    /// When the job reached its terminal state.
    pub finished_at: Option<SimTime>,
    /// Leaf the job was placed on, if admitted.
    pub leaf: Option<NodeId>,
    /// The reservation the job declared (and held while admitted).
    pub reservation: Reservation,
}

impl JobOutcome {
    /// Arrival→finish latency for completed jobs.
    pub fn latency(&self) -> Option<SimDur> {
        match (self.state, self.finished_at) {
            (JobState::Done, Some(end)) => Some(end - self.arrival),
            _ => None,
        }
    }

    /// For jobs that were admitted: the reservation as a runtime lease.
    /// Install it with `Runtime::install_lease` so the job's `Ctx::alloc`
    /// calls draw from the admitted capacity.
    pub fn lease(&self) -> Option<std::sync::Arc<northup::CapacityLease>> {
        self.admitted_at?;
        Some(self.reservation.to_lease())
    }
}

/// Everything `run` learned: per-job outcomes plus aggregate service
/// metrics and the audit trails the acceptance tests inspect.
#[derive(Debug, Clone)]
pub struct SchedReport {
    /// One record per submitted job, in `JobId` order.
    pub jobs: Vec<JobOutcome>,
    /// Last terminal transition (virtual time of the full trace).
    pub makespan: SimDur,
    /// Completed jobs per virtual second.
    pub throughput: f64,
    /// Median arrival→finish latency over completed jobs.
    pub p50_latency: SimDur,
    /// 99th-percentile arrival→finish latency over completed jobs.
    pub p99_latency: SimDur,
    /// Rejected jobs / submitted jobs.
    pub rejection_rate: f64,
    /// Jobs in the order their reservations were committed.
    pub admission_order: Vec<JobId>,
    /// Every commit/release transition.
    pub admission_log: Vec<AdmissionEvent>,
    /// Committed bytes per touched node after every transition.
    pub capacity_trace: Vec<CapacitySample>,
    /// Peak committed bytes ever observed per node.
    pub max_committed: BTreeMap<NodeId, u64>,
}

impl SchedReport {
    /// Outcome of one job.
    pub fn job(&self, id: JobId) -> &JobOutcome {
        &self.jobs[id.0 as usize]
    }

    /// Count of jobs that ended in `state`.
    pub fn count(&self, state: JobState) -> usize {
        self.jobs.iter().filter(|j| j.state == state).count()
    }

    /// True when every submitted job reached a terminal state.
    pub fn all_terminal(&self) -> bool {
        self.jobs.iter().all(|j| j.state.is_terminal())
    }

    /// One-line human summary for drivers and examples.
    pub fn summary(&self) -> String {
        format!(
            "{} jobs: {} done, {} rejected, {} cancelled | makespan {:.3} s | \
             {:.2} jobs/s | p50 {:.3} s | p99 {:.3} s | reject {:.1}%",
            self.jobs.len(),
            self.count(JobState::Done),
            self.count(JobState::Rejected),
            self.count(JobState::Cancelled),
            self.makespan.as_secs_f64(),
            self.throughput,
            self.p50_latency.as_secs_f64(),
            self.p99_latency.as_secs_f64(),
            self.rejection_rate * 100.0,
        )
    }
}

/// Event kinds, in processing order at equal virtual time: completions
/// free capacity before cancellations take effect, and both before new
/// arrivals are considered.
const EV_STAGE_DONE: u8 = 0;
const EV_CANCEL: u8 = 1;
const EV_ARRIVAL: u8 = 2;

#[derive(Debug)]
struct JobRec {
    spec: JobSpec,
    state: JobState,
    admitted_at: Option<SimTime>,
    finished_at: Option<SimTime>,
    leaf: Option<NodeId>,
    task: Option<northup::TaskId>,
    stages: Vec<Stage>,
    stage_idx: usize,
    chunks_done: u32,
    cancel_requested: bool,
}

/// The multi-tenant scheduler. Submit jobs, then [`run`](Self::run) the
/// deterministic co-simulation to a [`SchedReport`].
#[derive(Debug)]
pub struct JobScheduler {
    tree: Tree,
    cfg: SchedulerConfig,
    budgets: NodeBudgets,
    jobs: Vec<JobRec>,
}

impl JobScheduler {
    /// A scheduler over `tree` with budgets derived from its device
    /// capacities scaled by `cfg.headroom`.
    pub fn new(tree: Tree, cfg: SchedulerConfig) -> Self {
        let budgets = NodeBudgets::from_tree(&tree, cfg.headroom);
        JobScheduler {
            tree,
            cfg,
            budgets,
            jobs: Vec::new(),
        }
    }

    /// The admission budgets in force.
    pub fn budgets(&self) -> &NodeBudgets {
        &self.budgets
    }

    /// Submit a job; returns its id. Jobs may be submitted in any order —
    /// `run` replays them by arrival time.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        let id = JobId(self.jobs.len() as u64);
        self.jobs.push(JobRec {
            spec,
            state: JobState::Queued,
            admitted_at: None,
            finished_at: None,
            leaf: None,
            task: None,
            stages: Vec::new(),
            stage_idx: 0,
            chunks_done: 0,
            cancel_requested: false,
        });
        id
    }

    /// Request cancellation of `id` at virtual time `at` (same effect as
    /// submitting the spec with [`JobSpec::cancel_at`]).
    pub fn cancel(&mut self, id: JobId, at: SimTime) {
        if let Some(rec) = self.jobs.get_mut(id.0 as usize) {
            rec.spec.cancel_at = Some(at);
        }
    }

    /// Replay the submitted trace in virtual time and consume the
    /// scheduler. Deterministic: same trace + same config ⇒ same report.
    pub fn run(mut self) -> SchedReport {
        let mut st = RunState::new(&self.tree, &self.cfg);

        // Seed arrivals (and standalone cancellations of queued jobs).
        for (i, rec) in self.jobs.iter().enumerate() {
            let id = i as u64;
            st.events
                .push(Reverse((rec.spec.arrival, EV_ARRIVAL, id, 0)));
            if let Some(t) = rec.spec.cancel_at {
                st.events.push(Reverse((t, EV_CANCEL, id, 0)));
            }
        }

        while let Some(Reverse((t, kind, id, _))) = st.events.pop() {
            let id = JobId(id);
            match kind {
                EV_STAGE_DONE => self.on_stage_done(&mut st, id, t),
                EV_CANCEL => self.on_cancel(&mut st, id, t),
                EV_ARRIVAL => self.on_arrival(&mut st, id, t),
                _ => unreachable!("unknown event kind"),
            }
        }

        self.into_report(st)
    }

    fn on_arrival(&mut self, st: &mut RunState, id: JobId, t: SimTime) {
        let rec = &mut self.jobs[id.0 as usize];
        if rec.state.is_terminal() {
            return; // e.g. cancelled before arrival
        }
        if !self.budgets.feasible(&rec.spec.reservation) {
            rec.state = JobState::Rejected;
            rec.finished_at = Some(t);
            return;
        }
        let waiting: usize = st.class_queues.iter().map(VecDeque::len).sum();
        if waiting >= self.cfg.max_queue {
            rec.state = JobState::Rejected;
            rec.finished_at = Some(t);
            return;
        }
        let class = class_index(rec.spec.priority);
        st.class_queues[class].push_back(id);
        st.fifo_queue.push_back(id);
        self.admit_pass(st, t);
    }

    fn on_cancel(&mut self, st: &mut RunState, id: JobId, t: SimTime) {
        let rec = &mut self.jobs[id.0 as usize];
        match rec.state {
            JobState::Queued => {
                for q in st.class_queues.iter_mut() {
                    q.retain(|&j| j != id);
                }
                st.fifo_queue.retain(|&j| j != id);
                rec.state = JobState::Cancelled;
                rec.finished_at = Some(t);
            }
            JobState::Admitted | JobState::Running => {
                rec.cancel_requested = true; // honored at the chunk boundary
            }
            _ => {}
        }
    }

    /// A stage of the current chunk finished: book the next stage at its
    /// actual ready time, or close the chunk and open the next one.
    fn on_stage_done(&mut self, st: &mut RunState, id: JobId, t: SimTime) {
        let rec = &mut self.jobs[id.0 as usize];
        rec.stage_idx += 1;
        if rec.stage_idx < rec.stages.len() {
            let stage = rec.stages[rec.stage_idx];
            let end = st.fabric.serve(stage, t, &rec.spec.work);
            st.events.push(Reverse((end, EV_STAGE_DONE, id.0, 0)));
            return;
        }
        rec.chunks_done += 1;
        rec.stage_idx = 0;
        if rec.cancel_requested {
            self.finish(st, id, JobState::Cancelled, t);
        } else if rec.chunks_done >= rec.spec.work.chunks {
            self.finish(st, id, JobState::Done, t);
        } else {
            self.issue_chunk(st, id, t);
        }
    }

    /// Start the next chunk by booking only its FIRST stage — later
    /// stages are booked as their predecessors complete, so concurrent
    /// jobs interleave on every shared resource instead of one job
    /// reserving the whole chain up front.
    fn issue_chunk(&mut self, st: &mut RunState, id: JobId, t: SimTime) {
        let rec = &mut self.jobs[id.0 as usize];
        rec.state = JobState::Running;
        if rec.stages.is_empty() {
            // All-zero work shape: every chunk completes instantly.
            rec.chunks_done = rec.spec.work.chunks;
            let end_state = if rec.cancel_requested {
                JobState::Cancelled
            } else {
                JobState::Done
            };
            self.finish(st, id, end_state, t);
            return;
        }
        let end = st.fabric.serve(rec.stages[0], t, &rec.spec.work);
        st.events.push(Reverse((end, EV_STAGE_DONE, id.0, 0)));
    }

    /// Commit the reservation, place the job, and start its first chunk.
    fn admit(&mut self, st: &mut RunState, id: JobId, t: SimTime) {
        let rec = &mut self.jobs[id.0 as usize];
        debug_assert_eq!(rec.state, JobState::Queued);
        for (n, b) in rec.spec.reservation.iter() {
            let e = st.committed.entry(n).or_insert(0);
            *e += b;
            let peak = st.max_committed.entry(n).or_insert(0);
            *peak = (*peak).max(*e);
            st.capacity_trace.push(CapacitySample {
                at: t,
                node: n,
                committed: *e,
            });
        }
        rec.state = JobState::Admitted;
        rec.admitted_at = Some(t);
        st.admission_order.push(id);
        st.admission_log.push(AdmissionEvent {
            at: t,
            job: id,
            kind: AdmissionEventKind::Admitted,
        });
        st.active += 1;

        let name = rec.spec.name.clone();
        let zero_chunks = rec.spec.work.chunks == 0;

        // Placement: the leaf whose subtree (child-of-root anchor) has the
        // shallowest work queues; ties break toward the lowest leaf id.
        let leaf = self.place(st);
        let queue = st.wq.shortest_queue(leaf);
        let task = st.wq.enqueue(leaf, queue, name);
        let stages = st
            .fabric
            .plan_stages(leaf, &self.jobs[id.0 as usize].spec.work);
        let rec = &mut self.jobs[id.0 as usize];
        rec.leaf = Some(leaf);
        rec.task = Some(task);
        rec.stages = stages;

        if zero_chunks {
            self.finish(st, id, JobState::Done, t);
        } else {
            self.issue_chunk(st, id, t);
        }
    }

    fn place(&self, st: &RunState) -> NodeId {
        let mut best: Option<(usize, NodeId)> = None;
        for leaf in self.tree.leaves() {
            let anchor = subtree_anchor(&self.tree, leaf.id);
            let depth = st.wq.subtree_depth(&self.tree, anchor);
            let better = match best {
                None => true,
                Some((d, l)) => depth < d || (depth == d && leaf.id < l),
            };
            if better {
                best = Some((depth, leaf.id));
            }
        }
        best.expect("tree has at least one leaf").1
    }

    fn finish(&mut self, st: &mut RunState, id: JobId, state: JobState, t: SimTime) {
        let rec = &mut self.jobs[id.0 as usize];
        debug_assert!(state.is_terminal());
        for (n, b) in rec.spec.reservation.iter() {
            let e = st.committed.entry(n).or_insert(0);
            *e = e.saturating_sub(b);
            st.capacity_trace.push(CapacitySample {
                at: t,
                node: n,
                committed: *e,
            });
        }
        rec.state = state;
        rec.finished_at = Some(t);
        if let (Some(leaf), Some(task)) = (rec.leaf, rec.task.take()) {
            st.wq.complete(leaf, task);
        }
        st.admission_log.push(AdmissionEvent {
            at: t,
            job: id,
            kind: AdmissionEventKind::Released,
        });
        st.active -= 1;
        self.admit_pass(st, t);
    }

    /// One admission pass at virtual time `t`: admit every queued job the
    /// policy allows until nothing more fits.
    fn admit_pass(&mut self, st: &mut RunState, t: SimTime) {
        match self.cfg.policy {
            AdmissionPolicy::Fifo => {
                // Strict serialization: whole machine to one job at a time.
                while st.active == 0 {
                    let Some(&id) = st.fifo_queue.front() else {
                        break;
                    };
                    st.fifo_queue.pop_front();
                    for q in st.class_queues.iter_mut() {
                        q.retain(|&j| j != id);
                    }
                    self.admit(st, id, t);
                }
            }
            AdmissionPolicy::WeightedFair => self.fair_pass(st, t),
        }
    }

    fn fair_pass(&mut self, st: &mut RunState, t: SimTime) {
        // Refresh credits once per pass for classes with waiters.
        for (c, p) in Priority::ALL.iter().enumerate() {
            if !st.class_queues[c].is_empty() {
                st.credits[c] += p.weight();
            }
        }
        loop {
            // Candidate classes by (credits desc, class rank asc).
            let mut order: Vec<usize> = (0..Priority::ALL.len())
                .filter(|&c| !st.class_queues[c].is_empty())
                .collect();
            if order.is_empty() {
                return;
            }
            order.sort_by_key(|&c| (Reverse(st.credits[c]), c));

            // Starvation guard: once a class head has been bypassed
            // `aging_limit` times, only it may admit until it does.
            if let Some(b) = st.blocked_class {
                if st.class_queues[b].is_empty() {
                    st.blocked_class = None;
                } else {
                    let id = st.class_queues[b][0];
                    if self
                        .budgets
                        .fits(&st.committed, &self.jobs[id.0 as usize].spec.reservation)
                    {
                        st.class_queues[b].pop_front();
                        st.fifo_queue.retain(|&j| j != id);
                        st.credits[b] = 0;
                        st.starve[b] = 0;
                        st.blocked_class = None;
                        self.admit(st, id, t);
                        continue;
                    }
                    return; // must wait for the blocked class's head
                }
            }

            let mut admitted = false;
            for (rank, &c) in order.iter().enumerate() {
                let id = st.class_queues[c][0];
                if self
                    .budgets
                    .fits(&st.committed, &self.jobs[id.0 as usize].spec.reservation)
                {
                    if rank > 0 {
                        // Overtook the head of every higher-credit class.
                        for &hc in &order[..rank] {
                            st.starve[hc] += 1;
                            if st.starve[hc] >= self.cfg.aging_limit {
                                st.blocked_class = Some(hc);
                            }
                        }
                    }
                    st.class_queues[c].pop_front();
                    st.fifo_queue.retain(|&j| j != id);
                    st.credits[c] = 0;
                    st.starve[c] = 0;
                    self.admit(st, id, t);
                    admitted = true;
                    break;
                }
            }
            if !admitted {
                return;
            }
        }
    }

    fn into_report(self, st: RunState) -> SchedReport {
        let jobs: Vec<JobOutcome> = self
            .jobs
            .into_iter()
            .enumerate()
            .map(|(i, rec)| JobOutcome {
                id: JobId(i as u64),
                name: rec.spec.name,
                priority: rec.spec.priority,
                state: rec.state,
                arrival: rec.spec.arrival,
                admitted_at: rec.admitted_at,
                finished_at: rec.finished_at,
                leaf: rec.leaf,
                reservation: rec.spec.reservation,
            })
            .collect();

        let makespan = jobs
            .iter()
            .filter_map(|j| j.finished_at)
            .max()
            .map(|end| end - SimTime::ZERO)
            .unwrap_or(SimDur::ZERO);
        let done = jobs.iter().filter(|j| j.state == JobState::Done).count();
        let secs = makespan.as_secs_f64();
        let throughput = if secs > 0.0 { done as f64 / secs } else { 0.0 };

        let mut lats: Vec<SimDur> = jobs.iter().filter_map(JobOutcome::latency).collect();
        lats.sort();
        let pct = |p: usize| -> SimDur {
            if lats.is_empty() {
                SimDur::ZERO
            } else {
                lats[(lats.len() - 1) * p / 100]
            }
        };
        let rejected = jobs
            .iter()
            .filter(|j| j.state == JobState::Rejected)
            .count();
        let rejection_rate = if jobs.is_empty() {
            0.0
        } else {
            rejected as f64 / jobs.len() as f64
        };

        SchedReport {
            makespan,
            throughput,
            p50_latency: pct(50),
            p99_latency: pct(99),
            rejection_rate,
            admission_order: st.admission_order,
            admission_log: st.admission_log,
            capacity_trace: st.capacity_trace,
            max_committed: st.max_committed,
            jobs,
        }
    }
}

/// Per-run mutable state, kept out of `JobScheduler` so `run` borrows
/// stay simple.
struct RunState {
    /// (time, kind, job, seq) min-heap via `Reverse`.
    events: BinaryHeap<Reverse<(SimTime, u8, u64, u64)>>,
    class_queues: [VecDeque<JobId>; 3],
    fifo_queue: VecDeque<JobId>,
    credits: [u64; 3],
    starve: [u32; 3],
    blocked_class: Option<usize>,
    committed: BTreeMap<NodeId, u64>,
    max_committed: BTreeMap<NodeId, u64>,
    capacity_trace: Vec<CapacitySample>,
    admission_order: Vec<JobId>,
    admission_log: Vec<AdmissionEvent>,
    active: usize,
    fabric: SimFabric,
    wq: WorkQueues,
}

impl RunState {
    fn new(tree: &Tree, cfg: &SchedulerConfig) -> Self {
        RunState {
            events: BinaryHeap::new(),
            class_queues: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            fifo_queue: VecDeque::new(),
            credits: [0; 3],
            starve: [0; 3],
            blocked_class: None,
            committed: BTreeMap::new(),
            max_committed: BTreeMap::new(),
            capacity_trace: Vec::new(),
            admission_order: Vec::new(),
            admission_log: Vec::new(),
            active: 0,
            fabric: SimFabric::new(tree),
            wq: WorkQueues::new(tree, cfg.queues_per_node.max(1)),
        }
    }
}

fn class_index(p: Priority) -> usize {
    Priority::ALL
        .iter()
        .position(|&q| q == p)
        .expect("priority in ALL")
}

/// The child-of-root subtree containing `node` (the node itself when it
/// hangs directly off the root, or is the root).
fn subtree_anchor(tree: &Tree, node: NodeId) -> NodeId {
    let mut cur = node;
    while let Some(p) = tree.parent(cur) {
        if p == tree.root() {
            return cur;
        }
        cur = p;
    }
    cur
}

/// Helper used by jobs that want "a chunk reservation on the staging
/// level": reserve `bytes` on the first level-1 node along the root's
/// first child (convenience for examples and tests).
pub fn staging_reservation(tree: &Tree, bytes: u64) -> Reservation {
    match tree.children(tree.root()).first() {
        Some(&c) => Reservation::new().with(c, bytes),
        None => Reservation::new().with(tree.root(), bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobWork;
    use northup::presets;
    use northup_hw::catalog;

    fn tree() -> Tree {
        presets::apu_two_level(catalog::ssd_hyperx_predator())
    }

    fn small_job(name: &str, tree: &Tree, frac_of_dram: f64, chunks: u32) -> JobSpec {
        let dram = tree.children(tree.root())[0];
        let budget = tree.node(dram).mem.capacity;
        let bytes = (budget as f64 * frac_of_dram) as u64;
        JobSpec::new(
            name,
            Reservation::new().with(dram, bytes),
            JobWork::new(chunks)
                .read(32 << 20)
                .xfer(32 << 20)
                .compute(SimDur::from_millis(2)),
        )
    }

    #[test]
    fn oversized_reservations_serialize() {
        let tree = tree();
        let dram = tree.children(tree.root())[0];
        let budget = tree.node(dram).mem.capacity;
        let mut sched = JobScheduler::new(tree.clone(), SchedulerConfig::default());
        let a = sched.submit(small_job("a", &tree, 0.6, 4));
        let b = sched.submit(small_job("b", &tree, 0.6, 4));
        let report = sched.run();

        assert_eq!(report.job(a).state, JobState::Done);
        assert_eq!(report.job(b).state, JobState::Done);
        // b admitted only after a released.
        let a_release = report
            .admission_log
            .iter()
            .find(|e| e.job == a && e.kind == AdmissionEventKind::Released)
            .unwrap()
            .at;
        let b_admit = report.job(b).admitted_at.unwrap();
        assert!(b_admit >= a_release, "0.6+0.6 > 1.0 must serialize");
        // Committed bytes never exceed the budget at any sample.
        for s in &report.capacity_trace {
            assert!(s.committed <= budget, "sample {s:?} exceeds budget");
        }
        assert!(report.max_committed[&dram] <= budget);
    }

    #[test]
    fn co_fitting_jobs_run_concurrently_and_beat_fifo() {
        let tree = tree();
        let make = |policy| {
            let mut s = JobScheduler::new(
                tree.clone(),
                SchedulerConfig {
                    policy,
                    ..SchedulerConfig::default()
                },
            );
            for i in 0..6 {
                s.submit(small_job(&format!("j{i}"), &tree, 0.3, 3));
            }
            s.run()
        };
        let fair = make(AdmissionPolicy::WeightedFair);
        let fifo = make(AdmissionPolicy::Fifo);
        assert!(fair.all_terminal() && fifo.all_terminal());
        assert_eq!(fair.count(JobState::Done), 6);
        assert_eq!(fifo.count(JobState::Done), 6);
        assert!(
            fair.throughput > fifo.throughput,
            "concurrent admission ({:.2} jobs/s) must beat strict FIFO ({:.2} jobs/s)",
            fair.throughput,
            fifo.throughput
        );
    }

    #[test]
    fn backpressure_rejects_when_queue_is_full() {
        let tree = tree();
        let mut sched = JobScheduler::new(
            tree.clone(),
            SchedulerConfig {
                max_queue: 2,
                ..SchedulerConfig::default()
            },
        );
        // One hog admitted immediately, then many waiters at the same time.
        sched.submit(small_job("hog", &tree, 0.9, 8));
        for i in 0..5 {
            sched.submit(small_job(&format!("w{i}"), &tree, 0.9, 1));
        }
        let report = sched.run();
        assert!(
            report.count(JobState::Rejected) >= 3,
            "{}",
            report.summary()
        );
        assert!(report.all_terminal());
    }

    #[test]
    fn infeasible_reservation_is_rejected_at_arrival() {
        let tree = tree();
        let dram = tree.children(tree.root())[0];
        let too_big = tree.node(dram).mem.capacity + 1;
        let mut sched = JobScheduler::new(tree.clone(), SchedulerConfig::default());
        let id = sched.submit(JobSpec::new(
            "whale",
            Reservation::new().with(dram, too_big),
            JobWork::new(1).read(1 << 20),
        ));
        let report = sched.run();
        assert_eq!(report.job(id).state, JobState::Rejected);
    }

    #[test]
    fn cancellation_from_queue_and_at_chunk_boundary() {
        let tree = tree();
        let mut sched = JobScheduler::new(tree.clone(), SchedulerConfig::default());
        let hog = sched.submit(small_job("hog", &tree, 0.9, 16));
        let waiter = sched.submit(small_job("waiter", &tree, 0.9, 4));
        sched.cancel(waiter, SimTime::from_secs_f64(0.001));
        sched.cancel(hog, SimTime::from_secs_f64(0.05));
        let report = sched.run();
        assert_eq!(report.job(waiter).state, JobState::Cancelled);
        assert_eq!(report.job(hog).state, JobState::Cancelled);
        assert!(report.all_terminal());
    }

    #[test]
    fn interactive_class_is_favored_but_batch_not_starved() {
        let tree = tree();
        let mut sched = JobScheduler::new(
            tree.clone(),
            SchedulerConfig {
                aging_limit: 4,
                ..SchedulerConfig::default()
            },
        );
        // A stream where everything co-fits two-at-a-time.
        for i in 0..4 {
            sched.submit(small_job(&format!("b{i}"), &tree, 0.45, 2).priority(Priority::Batch));
        }
        for i in 0..4 {
            sched.submit(
                small_job(&format!("i{i}"), &tree, 0.45, 2).priority(Priority::Interactive),
            );
        }
        let report = sched.run();
        assert_eq!(report.count(JobState::Done), 8);
        // Every batch job finished — no starvation.
        for j in &report.jobs {
            assert_eq!(j.state, JobState::Done, "{} starved", j.name);
        }
    }

    #[test]
    fn same_trace_same_schedule() {
        let tree = tree();
        let build = || {
            let mut s = JobScheduler::new(tree.clone(), SchedulerConfig::default());
            for i in 0..8 {
                let p = Priority::ALL[i % 3];
                s.submit(
                    small_job(&format!("j{i}"), &tree, 0.25 + 0.05 * (i % 3) as f64, 2)
                        .priority(p)
                        .arrival(SimTime::from_secs_f64(0.0001 * i as f64)),
                );
            }
            s.run()
        };
        let r1 = build();
        let r2 = build();
        assert_eq!(r1.admission_order, r2.admission_order);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.capacity_trace, r2.capacity_trace);
    }
}
