//! The multi-tenant job scheduler: admission control, weighted fair
//! queueing, placement, chunk-granular preemption, live budget
//! reconfiguration, and the deterministic virtual-time co-simulation.
//!
//! [`JobScheduler`] accepts a batch of [`JobSpec`]s (an arrival trace),
//! then [`JobScheduler::run`] replays it event by event in virtual time:
//!
//! 1. **Arrival** — infeasible reservations and queue overflow are
//!    rejected (backpressure); everything else queues in its priority
//!    class. With [`SchedulerConfig::preempt`] enabled, an arrival that
//!    cannot fit may mark strictly-lower-priority running jobs for
//!    eviction at their next chunk boundary.
//! 2. **Admission** — a weighted-fair pass over the class queues commits
//!    each admitted job's [`Reservation`] against the [`NodeBudgets`];
//!    the invariant `committed(node) ≤ budget(node)` holds at every
//!    virtual instant (for the budgets in force — see resize below). A
//!    starvation guard blocks further bypasses once a class head has
//!    been overtaken `aging_limit` times. Per-tenant token-bucket quotas
//!    ([`SchedulerConfig::tenant_quota`]) throttle tenants that have
//!    overdrawn their byte-second allowance.
//! 3. **Execution** — admitted jobs issue sequential chunks on the shared
//!    [`SimFabric`]; each chunk is the compiled stage chain of
//!    [`northup::fabric::build_chain`], so contention on root storage and
//!    links is visible in completion times. Placement picks the leaf
//!    whose subtree has the shallowest work queues (the paper's §V-E
//!    subtree-status check).
//! 4. **Release** — at a job's terminal transition its reservation is
//!    credited back and another admission pass runs. A *preempted* job
//!    releases too, but keeps its [`Checkpoint`]: completed chunks are
//!    never re-run; the job re-queues at the front of its class and
//!    resumes from its next unprocessed chunk when capacity returns.
//! 5. **Resize** — [`JobScheduler::resize_budgets`] swaps the budgets in
//!    force at a chosen virtual time. [`ResizeDrain::Drain`] lets
//!    over-committed jobs finish (committed bytes may transiently exceed
//!    a *shrunk* budget, never grow); [`ResizeDrain::Preempt`] evicts
//!    running jobs at their chunk boundaries until the commitment fits.
//!    Queued jobs whose reservation can never fit under the new budgets
//!    are rejected, preserving terminal totality.
//! 6. **Faults** — with a [`SchedulerConfig::fault_plan`] installed,
//!    every stage booking first consults the seeded plan (DESIGN.md
//!    §10). A *transient* fault re-books the same stage after an
//!    exponential [`RetryPolicy`] backoff charged in virtual time; a
//!    *persistent* fault (or an exhausted retry budget) counts the
//!    node toward [`SchedulerConfig::quarantine_after`], after which
//!    the node is fenced: budget zeroed, infeasible queued jobs
//!    rejected, and in-flight chains fault-evicted at the next chunk
//!    boundary to re-place on a surviving leaf from their checkpoint —
//!    bounded per job by [`SchedulerConfig::max_job_faults`]. All of it
//!    is accounted in [`SchedReport::fault_log`],
//!    [`SchedReport::quarantine_log`], and each job's [`FaultOutcome`].
//!
//! Everything is keyed on ordered integers (`SimTime`, event kind,
//! `JobId`), so one trace + one config ⇒ one schedule, bit for bit —
//! including chaos runs: fault decisions and backoff jitter are pure
//! hashes of (plan seed, node, booking ordinal), never OS entropy.
//! Preemption, quotas, resizes, and fault plans are all off by default
//! and leave the schedule untouched when unused.
//!
//! [`Checkpoint`]: northup::fabric::Checkpoint

use crate::calendar::{CalendarQueue, Event};
use crate::error::SchedError;
use crate::fabric::SimFabric;
use crate::job::{JobId, JobSpec, JobState, Priority, SloClass, TenantId};
use crate::reserve::{NodeBudgets, Reservation, TenantQuota};
use crate::slo::{DegradeLevel, RejectReason, ShedOutcome, SloConfig, SloSample, SloState};
use northup::fabric::{build_chain, ChainStage, ChunkChain, ChunkWork};
use northup::fault::{FaultKind, FaultPlan, RetryPolicy};
use northup::{NodeId, Tree, WorkQueues};
use northup_sim::{SimDur, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// How the scheduler decides which queued job to admit next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Weighted fair admission across priority classes with a starvation
    /// guard; concurrent jobs share the machine whenever their
    /// reservations co-fit.
    WeightedFair,
    /// Strict serial FIFO: one job owns the whole machine at a time
    /// (admitted only when nothing else is admitted or running). The
    /// baseline the bench compares against.
    Fifo,
}

/// What a budget *shrink* does to jobs already over the new line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeDrain {
    /// Let over-committed running jobs finish; only new admissions see
    /// the tighter budgets. Committed bytes may transiently exceed a
    /// shrunk budget but never grow past the old one.
    Drain,
    /// Evict running jobs (lowest priority, most recently admitted
    /// first) at their next chunk boundary until the commitment fits
    /// under the new budgets. Evicted jobs resume from their checkpoint.
    Preempt,
}

/// Node recovery policy: how a quarantined node earns its budget back.
///
/// A fence is not forever — transient environmental trouble (a flaky
/// cable, a thermal excursion) clears, and a long fleet replay that
/// never recovers capacity drifts ever further from reality. With a
/// probation policy installed, fencing a node schedules a *probe* after
/// a probation window: the probe consults the fault plan [`Self::probes`]
/// times at fresh ordinals, and only if **every** decision comes back
/// clean is the node restored — budget back to its pre-fence value,
/// persistent-fault count reset (the node must accumulate
/// [`SchedulerConfig::quarantine_after`] fresh faults to be fenced
/// again). A dirty probe re-schedules with hysteresis: each successive
/// probe (and each restore-then-re-fence flap) multiplies the next
/// window by [`Self::backoff`], and after [`Self::max_restores`] probes
/// the node stays fenced for good — so an unstable node cannot flap
/// between fenced and live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Probation {
    /// Virtual-time window between the fence (or a failed probe) and the
    /// next probe.
    pub window: SimDur,
    /// Fault-plan consultations per probe; all must be clean to restore.
    pub probes: u32,
    /// Window multiplier per successive probe of the same node
    /// (hysteresis; clamped to ≥ 1).
    pub backoff: u32,
    /// Total probes (and hence restores) one node may ever get; after
    /// this the fence is permanent.
    pub max_restores: u32,
}

impl Default for Probation {
    fn default() -> Self {
        Probation {
            window: SimDur::from_millis(50),
            probes: 8,
            backoff: 4,
            max_restores: 3,
        }
    }
}

/// Scheduler knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Fraction of each node's capacity the scheduler may commit
    /// (see [`NodeBudgets::from_tree`]).
    pub headroom: f64,
    /// Maximum jobs waiting across all class queues before arrivals are
    /// rejected (backpressure).
    pub max_queue: usize,
    /// Admission policy.
    pub policy: AdmissionPolicy,
    /// After a class head has been bypassed this many times, no
    /// lower-credit class may overtake it again until it admits.
    pub aging_limit: u32,
    /// Work queues per tree node fed to placement.
    pub queues_per_node: usize,
    /// Chunk-granular preemption: a queued arrival that does not fit may
    /// evict strictly-lower-priority running jobs at their next chunk
    /// boundary. Off by default (schedules are unchanged when off).
    pub preempt: bool,
    /// What a live budget shrink does to jobs already over the new line.
    pub resize_drain: ResizeDrain,
    /// Per-tenant byte-second admission quota; `None` disables quotas.
    pub tenant_quota: Option<TenantQuota>,
    /// Deterministic fault injection: the seeded plan consulted at every
    /// stage booking. `None` (the default) injects nothing and leaves
    /// the schedule bit-identical to a fault-free run.
    pub fault_plan: Option<FaultPlan>,
    /// Retry policy for transiently faulted stages (bounded attempts,
    /// exponential virtual-time backoff with jitter from the plan).
    pub retry: RetryPolicy,
    /// After this many persistent faults a node is quarantined: its
    /// budget drops to zero, in-flight chains re-route to surviving
    /// leaves, and reservations touching it become infeasible.
    pub quarantine_after: u32,
    /// How many fault-driven displacements one job tolerates before it
    /// is failed (bounds chaos runs: every job stays terminal).
    pub max_job_faults: u32,
    /// Node recovery: probation window restoring a fenced node's budget
    /// after a fault-free interval, with hysteresis against flapping.
    /// `None` (the default) keeps quarantine permanent.
    pub probation: Option<Probation>,
    /// Fault-aware placement: bias leaf choice away from nodes
    /// accumulating sub-threshold persistent faults, so chains migrate
    /// *before* quarantine trips. Off by default — with no observed
    /// faults the bias is zero and schedules are untouched either way.
    pub fault_aware_placement: bool,
    /// Checkpoint spill accounting: charge the writeback of a victim's
    /// in-flight staging ring (its per-chunk transfer bytes) on the root
    /// store at every mid-flight displacement — preemption, resize
    /// eviction, or fault eviction. The writeback occupies the root
    /// resource in virtual time (delaying later bookings) and lands in
    /// [`SchedReport::spill_log`] and the victim's
    /// [`JobOutcome::spilled_bytes`], so evict-vs-drain policies have a
    /// measurable cost. Off by default — schedules are bit-identical to
    /// pre-spill runs when off.
    pub charge_spill: bool,
    /// Quota-aware fair queueing: blend each tenant's token-bucket debt
    /// into the admission pass so a throttled tenant's jobs stop
    /// consuming their class's aging budget — a throttled head neither
    /// accrues starvation counts against other classes nor blocks them
    /// via the aging guard. Off by default (and a no-op without
    /// [`SchedulerConfig::tenant_quota`]); schedules are unchanged when
    /// off.
    pub quota_fair: bool,
    /// SLO overload control: a deterministic feedback controller samples
    /// per-class completion latency on a virtual-time `EV_CONTROL` tick
    /// and defends the guaranteed class's p99 in escalating tiers —
    /// backpressure, shedding, brownout degradation, and (optionally)
    /// budget autoscaling (DESIGN.md §15). `None` (the default)
    /// schedules no control event and leaves every schedule
    /// bit-identical to the pre-SLO engine.
    pub slo: Option<SloConfig>,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            headroom: 1.0,
            max_queue: 64,
            policy: AdmissionPolicy::WeightedFair,
            aging_limit: 8,
            queues_per_node: 1,
            preempt: false,
            resize_drain: ResizeDrain::Drain,
            tenant_quota: None,
            fault_plan: None,
            retry: RetryPolicy::default(),
            quarantine_after: 3,
            max_job_faults: 8,
            probation: None,
            fault_aware_placement: false,
            charge_spill: false,
            quota_fair: false,
            slo: None,
        }
    }
}

/// One checkpoint spill: a displaced job's in-flight staging ring written
/// back to the root store at its eviction boundary (recorded only with
/// [`SchedulerConfig::charge_spill`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpillSample {
    /// Virtual time the writeback was booked (the eviction boundary).
    pub at: SimTime,
    /// The displaced job whose staging ring spilled.
    pub job: JobId,
    /// Bytes written back (the job's per-chunk transfer footprint).
    pub bytes: u64,
    /// Virtual time the root store finished absorbing the writeback.
    pub done: SimTime,
}

/// One admission-log entry: capacity committed or released.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionEvent {
    /// Virtual time of the transition.
    pub at: SimTime,
    /// The job whose reservation moved.
    pub job: JobId,
    /// Committed (admission) or credited back (terminal transition or
    /// eviction).
    pub kind: AdmissionEventKind,
}

/// Direction of an [`AdmissionEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionEventKind {
    /// The job's reservation was committed against the budgets.
    Admitted,
    /// The job's reservation was credited back at a terminal transition.
    Released,
    /// The job was evicted at a chunk boundary; its reservation was
    /// credited back and it re-queued with its checkpoint.
    Preempted,
    /// The job was displaced by a fault (persistent fault, exhausted
    /// retries, or a quarantined node on its chain); its reservation was
    /// credited back and it re-queued for re-placement on a surviving
    /// leaf, keeping its checkpoint.
    FaultEvicted,
}

/// Committed bytes on one node right after an admission-log transition —
/// the raw series behind the "never exceeds budget" acceptance check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacitySample {
    /// Virtual time of the sample.
    pub at: SimTime,
    /// Sampled node.
    pub node: NodeId,
    /// Committed bytes on `node` after the transition.
    pub committed: u64,
}

/// One completed chunk: the raw series behind the "every chunk executes
/// exactly once across evictions" acceptance check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkSample {
    /// Virtual completion time of the chunk.
    pub at: SimTime,
    /// The job the chunk belongs to.
    pub job: JobId,
    /// Chunk index within the job (0-based).
    pub index: u32,
}

/// One injected fault: the raw series behind the chaos acceptance
/// checks (and the bit-identity comparison between seeded runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSample {
    /// Virtual time the fault was observed (at stage booking).
    pub at: SimTime,
    /// The faulted node (the stage's failure domain).
    pub node: NodeId,
    /// The job whose stage faulted.
    pub job: JobId,
    /// Transient (retryable) or persistent (counts toward quarantine).
    pub kind: FaultKind,
    /// The per-node operation ordinal the plan keyed the decision on.
    pub ordinal: u64,
}

/// One node quarantine: after [`SchedulerConfig::quarantine_after`]
/// persistent faults the node is fenced — budget zeroed, in-flight
/// chains re-routed, reservations touching it rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineSample {
    /// Virtual time the node was fenced.
    pub at: SimTime,
    /// The quarantined node.
    pub node: NodeId,
    /// Persistent faults observed on the node when it was fenced.
    pub faults: u32,
}

/// One probation restore: a fenced node survived its fault-free window
/// and got its pre-fence budget back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreSample {
    /// Virtual time the node was restored.
    pub at: SimTime,
    /// The restored node.
    pub node: NodeId,
    /// Which probe (1-based, across the node's lifetime) succeeded —
    /// later attempts mean the node flapped and waited through longer
    /// hysteresis windows.
    pub attempt: u32,
    /// Budget bytes given back.
    pub budget: u64,
}

/// Per-job fault accounting in the [`JobOutcome`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultOutcome {
    /// Transient faults the job's stages observed.
    pub transient: u32,
    /// Persistent faults the job's stages observed (including transient
    /// faults that exhausted their retries).
    pub persistent: u32,
    /// Retries performed (each after a backoff).
    pub retries: u32,
    /// Total virtual time spent backing off.
    pub backoff: SimDur,
    /// Fault-driven displacements: evictions that re-placed the job on a
    /// surviving leaf (checkpoint intact — no chunk ran twice).
    pub reroutes: u32,
}

impl FaultOutcome {
    /// True when the job observed any fault at all.
    pub fn affected(&self) -> bool {
        self.transient > 0 || self.persistent > 0 || self.reroutes > 0
    }
}

/// One applied budget reconfiguration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResizeSample {
    /// Virtual time the new budgets took effect.
    pub at: SimTime,
    /// The per-node budgets now in force (index = `NodeId.0`).
    pub budgets: Vec<u64>,
}

/// Final per-job record in the [`SchedReport`].
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Job id (submission order).
    pub id: JobId,
    /// Submitter-chosen name.
    pub name: String,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Admission class.
    pub priority: Priority,
    /// Terminal state (always terminal after `run`).
    pub state: JobState,
    /// Arrival time from the trace.
    pub arrival: SimTime,
    /// When the reservation was (last) committed, if ever.
    pub admitted_at: Option<SimTime>,
    /// When the job reached its terminal state.
    pub finished_at: Option<SimTime>,
    /// Leaf the job was (last) placed on, if admitted.
    pub leaf: Option<NodeId>,
    /// The reservation the job declared (and held while admitted).
    pub reservation: Reservation,
    /// Chunks the job completed (equals the spec's chunk count for
    /// `Done` jobs, a strict prefix otherwise).
    pub chunks_done: u32,
    /// How many times the job was evicted and later resumed.
    pub preemptions: u32,
    /// Fault accounting: faults observed, retries, backoff, re-routes.
    pub fault: FaultOutcome,
    /// Staging-ring writeback bytes charged when this job was evicted
    /// mid-flight (preemption, resize, or fault displacement) with
    /// [`SchedulerConfig::charge_spill`] enabled. Zero when the knob is
    /// off or the job was never displaced.
    pub spilled_bytes: u64,
    /// Why the job was rejected (`None` for every other terminal state):
    /// the typed split of backpressure vs. shed vs. infeasible that the
    /// bare rejection count used to hide.
    pub reject_reason: Option<RejectReason>,
    /// Deepest [`DegradeLevel`] rank any of this job's admissions
    /// compiled at (0 = always full fidelity).
    pub degrade: u8,
}

impl JobOutcome {
    /// Arrival→finish latency for completed jobs.
    pub fn latency(&self) -> Option<SimDur> {
        match (self.state, self.finished_at) {
            (JobState::Done, Some(end)) => Some(end - self.arrival),
            _ => None,
        }
    }

    /// For jobs that were admitted: the reservation as a runtime lease.
    /// Install it with `Runtime::install_lease` so the job's `Ctx::alloc`
    /// calls draw from the admitted capacity.
    pub fn lease(&self) -> Option<std::sync::Arc<northup::CapacityLease>> {
        self.admitted_at?;
        Some(self.reservation.to_lease())
    }
}

/// Everything `run` learned: per-job outcomes plus aggregate service
/// metrics and the audit trails the acceptance tests inspect.
#[derive(Debug, Clone)]
pub struct SchedReport {
    /// One record per submitted job, in `JobId` order.
    pub jobs: Vec<JobOutcome>,
    /// Last terminal transition (virtual time of the full trace).
    pub makespan: SimDur,
    /// Completed jobs per virtual second.
    pub throughput: f64,
    /// Median arrival→finish latency over completed jobs.
    pub p50_latency: SimDur,
    /// 99th-percentile arrival→finish latency over completed jobs.
    pub p99_latency: SimDur,
    /// Rejected jobs / submitted jobs.
    pub rejection_rate: f64,
    /// Jobs in the order their reservations were committed (re-admissions
    /// after eviction appear again).
    pub admission_order: Vec<JobId>,
    /// Every commit/release/evict transition.
    pub admission_log: Vec<AdmissionEvent>,
    /// Committed bytes per touched node after every transition.
    pub capacity_trace: Vec<CapacitySample>,
    /// Peak committed bytes ever observed per node, dense by `NodeId.0`
    /// (zero for nodes no reservation ever touched).
    pub max_committed: Vec<u64>,
    /// Every completed chunk, in completion order.
    pub chunk_log: Vec<ChunkSample>,
    /// Every applied budget reconfiguration, in effect order.
    pub resize_log: Vec<ResizeSample>,
    /// Eviction-request → eviction-effect delay of every preemption (how
    /// long the victim's in-flight chunk kept the capacity occupied).
    pub preemption_latencies: Vec<SimDur>,
    /// Every injected fault, in observation order (empty without a
    /// [`SchedulerConfig::fault_plan`]).
    pub fault_log: Vec<FaultSample>,
    /// Every node quarantine, in fencing order.
    pub quarantine_log: Vec<QuarantineSample>,
    /// Every probation restore, in restore order (empty without a
    /// [`SchedulerConfig::probation`] policy).
    pub restore_log: Vec<RestoreSample>,
    /// Every checkpoint-spill writeback, in booking order (empty without
    /// [`SchedulerConfig::charge_spill`]).
    pub spill_log: Vec<SpillSample>,
    /// Scheduler events processed by the run loop — the raw unit of the
    /// event-engine throughput metric (events/sec) tracked by the bench
    /// harness.
    pub events: u64,
    /// Every job the SLO controller shed, in shed order (empty without
    /// [`SchedulerConfig::slo`]).
    pub shed_log: Vec<ShedOutcome>,
    /// One observation per control tick: p99s, pressure, tier, brownout
    /// level, cap, and applied scale (empty without
    /// [`SchedulerConfig::slo`]).
    pub slo_log: Vec<SloSample>,
    /// The controller's capacity-planning answer: the peak projected
    /// capacity this trace needed to meet the guaranteed-class SLO, in
    /// percent of the configured budgets (100 = they sufficed; always
    /// 100 without [`SchedulerConfig::slo`]).
    pub capacity_needed_pct: u32,
}

impl SchedReport {
    /// Outcome of one job.
    pub fn job(&self, id: JobId) -> &JobOutcome {
        &self.jobs[id.0 as usize]
    }

    /// Peak committed bytes per *touched* node, as `(node, peak)` pairs
    /// in node order. A touched node's peak is always ≥ 1 byte (empty
    /// reservation entries never exist), so the pair stream is
    /// independent of how the engine stores the accounting — the
    /// representation [`report_digest`](crate::digest::report_digest)
    /// folds.
    pub fn max_committed_pairs(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.max_committed
            .iter()
            .enumerate()
            .filter(|(_, &b)| b > 0)
            .map(|(n, &b)| (NodeId(n), b))
    }

    /// Count of jobs that ended in `state`.
    pub fn count(&self, state: JobState) -> usize {
        self.jobs.iter().filter(|j| j.state == state).count()
    }

    /// True when every submitted job reached a terminal state.
    pub fn all_terminal(&self) -> bool {
        self.jobs.iter().all(|j| j.state.is_terminal())
    }

    /// Total evictions across all jobs.
    pub fn total_preemptions(&self) -> usize {
        self.jobs.iter().map(|j| j.preemptions as usize).sum()
    }

    /// Mean eviction-request → eviction-effect delay (zero when nothing
    /// was preempted).
    pub fn mean_preemption_latency(&self) -> SimDur {
        if self.preemption_latencies.is_empty() {
            return SimDur::ZERO;
        }
        let total: f64 = self
            .preemption_latencies
            .iter()
            .map(|d| d.as_secs_f64())
            .sum();
        SimDur::from_secs_f64(total / self.preemption_latencies.len() as f64)
    }

    /// Total transient-fault retries across all jobs.
    pub fn total_retries(&self) -> u64 {
        self.jobs.iter().map(|j| u64::from(j.fault.retries)).sum()
    }

    /// Total virtual time all jobs spent backing off.
    pub fn total_backoff(&self) -> SimDur {
        let secs: f64 = self
            .jobs
            .iter()
            .map(|j| j.fault.backoff.as_secs_f64())
            .sum();
        SimDur::from_secs_f64(secs)
    }

    /// Jobs that completed despite observing at least one fault — the
    /// headline number of a chaos run.
    pub fn jobs_recovered(&self) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.state == JobState::Done && j.fault.affected())
            .count()
    }

    /// Nodes quarantined during the run, in fencing order.
    pub fn quarantined_nodes(&self) -> Vec<NodeId> {
        self.quarantine_log.iter().map(|q| q.node).collect()
    }

    /// Nodes restored by probation during the run, in restore order.
    pub fn restored_nodes(&self) -> Vec<NodeId> {
        self.restore_log.iter().map(|r| r.node).collect()
    }

    /// Sub-threshold fault pressure per node: persistent faults observed
    /// on each node over the run. This is the same signal fault-aware
    /// placement biases on, exposed so a federation router can fold one
    /// shard's accumulated trouble into its cross-shard scoring.
    pub fn node_fault_pressure(&self) -> BTreeMap<NodeId, u32> {
        let mut pressure: BTreeMap<NodeId, u32> = BTreeMap::new();
        for f in &self.fault_log {
            if f.kind == FaultKind::Persistent {
                *pressure.entry(f.node).or_insert(0) += 1;
            }
        }
        pressure
    }

    /// Rejected jobs whose typed reason is `reason`.
    pub fn rejected_for(&self, reason: RejectReason) -> usize {
        self.jobs
            .iter()
            .filter(|j| j.reject_reason == Some(reason))
            .count()
    }

    /// Sorted arrival→finish latencies of completed jobs in `class`.
    pub fn class_latencies(&self, class: Priority) -> Vec<SimDur> {
        let mut lats: Vec<SimDur> = self
            .jobs
            .iter()
            .filter(|j| j.priority == class)
            .filter_map(JobOutcome::latency)
            .collect();
        lats.sort_unstable();
        lats
    }

    /// 99th-percentile completion latency of `class` (integer-index
    /// percentile; `SimDur::ZERO` with no completions).
    pub fn class_p99(&self, class: Priority) -> SimDur {
        crate::slo::percentile_of(&self.class_latencies(class), 99)
    }

    /// Jobs that ran at least one admission below full fidelity
    /// (brownout degradation).
    pub fn degraded_jobs(&self) -> usize {
        self.jobs.iter().filter(|j| j.degrade > 0).count()
    }

    /// One-line human summary for drivers and examples.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "{} jobs: {} done, {} rejected, {} cancelled | makespan {:.3} s | \
             {:.2} jobs/s | p50 {:.3} s | p99 {:.3} s | reject {:.1}% | {} preemptions",
            self.jobs.len(),
            self.count(JobState::Done),
            self.count(JobState::Rejected),
            self.count(JobState::Cancelled),
            self.makespan.as_secs_f64(),
            self.throughput,
            self.p50_latency.as_secs_f64(),
            self.p99_latency.as_secs_f64(),
            self.rejection_rate * 100.0,
            self.total_preemptions(),
        );
        if !self.fault_log.is_empty() || !self.quarantine_log.is_empty() {
            s.push_str(&format!(
                " | {} faults, {} retries ({:.3} s backoff), {} recovered, \
                 {} failed, {} quarantined, {} restored",
                self.fault_log.len(),
                self.total_retries(),
                self.total_backoff().as_secs_f64(),
                self.jobs_recovered(),
                self.count(JobState::Failed),
                self.quarantine_log.len(),
                self.restore_log.len(),
            ));
        }
        if !self.slo_log.is_empty() {
            s.push_str(&format!(
                " | slo: {} ticks, {} shed, {} degraded, capacity needed {}%",
                self.slo_log.len(),
                self.shed_log.len(),
                self.degraded_jobs(),
                self.capacity_needed_pct,
            ));
        }
        s
    }
}

/// Event kinds, in processing order at equal virtual time: completions
/// free capacity first, then backed-off stages retry; cancellations and
/// budget/quota changes take effect before new arrivals are considered.
const EV_STAGE_DONE: u8 = 0;
const EV_RETRY: u8 = 1;
const EV_CANCEL: u8 = 2;
const EV_RESIZE: u8 = 3;
const EV_QUOTA: u8 = 4;
const EV_ARRIVAL: u8 = 5;
/// Probation probe of a fenced node (after arrivals at the same instant,
/// so a restore at time t serves queued work from t onward, not a
/// same-instant arrival race).
const EV_PROBE: u8 = 6;
/// SLO control tick (last at equal time, so the controller observes the
/// instant's completions and arrivals before it reacts). Scheduled only
/// with [`SchedulerConfig::slo`]; the handler re-arms the next tick.
const EV_CONTROL: u8 = 7;

/// Sentinel chain index of a job that currently has no placement.
const CHAIN_NONE: u32 = u32::MAX;

/// Eviction/cancellation marks carried in [`HotJob::flags`].
///
/// `F_CANCEL` — cancellation honored at the chunk boundary.
/// `F_PREEMPT` — marked by a higher-priority arrival; revalidated at the
/// boundary (the pressure may have passed).
/// `F_RESIZE` — marked by a budget shrink; unconditional at the boundary.
/// `F_FAULT` — a fenced node lies on the job's chain; displaced at the
/// boundary (or at the next stage booking, whichever comes first).
const F_CANCEL: u8 = 1 << 0;
const F_PREEMPT: u8 = 1 << 1;
const F_RESIZE: u8 = 1 << 2;
const F_FAULT: u8 = 1 << 3;

/// The per-event job state, packed dense so the run loop's random access
/// per `EV_STAGE_DONE` touches one 20-byte record instead of a fat
/// [`JobRec`]. At 10^6-job scale hundreds of thousands of jobs are
/// resident at once; the event loop visits them in arbitrary order, so
/// the working set of this array (not the cold spec/accounting records)
/// decides the cache and TLB hit rate of the whole engine.
#[derive(Debug, Clone, Copy)]
struct HotJob {
    /// Index of the job's compiled chain in the run's [`ChainArena`]
    /// ([`CHAIN_NONE`] while unplaced). Chains are interned by (leaf,
    /// work shape), so a million admissions share a handful of compiled
    /// chains instead of allocating stage vectors each.
    chain: u32,
    chunks_done: u32,
    /// Cached `spec.work.chunks` (hot-loop bound).
    chunks_total: u32,
    stage_idx: u16,
    /// Cached `stages.len()` of the interned chain (hot-loop bound).
    chain_len: u16,
    state: JobState,
    /// `F_CANCEL | F_PREEMPT | F_RESIZE | F_FAULT` marks, honored at the
    /// chunk boundary.
    flags: u8,
}

/// The cold per-job record: the spec plus accounting touched only at
/// admission, displacement, and terminal transitions — never on the
/// per-stage hot path (that state lives in [`HotJob`]).
#[derive(Debug)]
struct JobRec {
    spec: JobSpec,
    admitted_at: Option<SimTime>,
    finished_at: Option<SimTime>,
    leaf: Option<NodeId>,
    task: Option<northup::TaskId>,
    /// When an eviction was requested (for the latency report).
    preempt_requested_at: Option<SimTime>,
    preemptions: u32,
    /// Failed serve attempts of the current stage (reset on a clean
    /// booking and on displacement).
    stage_attempts: u32,
    /// Fault accounting, reported as the job's [`FaultOutcome`].
    faults_transient: u32,
    faults_persistent: u32,
    retries: u32,
    backoff_total: SimDur,
    reroutes: u32,
    /// Staging-ring writeback bytes charged across this job's evictions
    /// (zero without [`SchedulerConfig::charge_spill`]).
    spilled_bytes: u64,
    /// Typed reason if the job was rejected (arrival backpressure,
    /// controller shed, or infeasibility).
    reject_reason: Option<RejectReason>,
    /// Deepest brownout rank any admission of this job compiled at.
    degrade: u8,
}

/// The multi-tenant scheduler. Submit jobs, then [`run`](Self::run) the
/// deterministic co-simulation to a [`SchedReport`].
#[derive(Debug)]
pub struct JobScheduler {
    tree: Tree,
    cfg: SchedulerConfig,
    budgets: NodeBudgets,
    pending_resizes: Vec<(SimTime, NodeBudgets)>,
    jobs: Vec<JobRec>,
}

impl JobScheduler {
    /// A scheduler over `tree` with budgets derived from its device
    /// capacities scaled by `cfg.headroom`.
    pub fn new(tree: Tree, cfg: SchedulerConfig) -> Self {
        let budgets = NodeBudgets::from_tree(&tree, cfg.headroom);
        JobScheduler {
            tree,
            cfg,
            budgets,
            pending_resizes: Vec::new(),
            jobs: Vec::new(),
        }
    }

    /// The admission budgets in force (before `run`, the initial ones).
    pub fn budgets(&self) -> &NodeBudgets {
        &self.budgets
    }

    /// Submit a job; returns its id. Jobs may be submitted in any order —
    /// `run` replays them by arrival time.
    pub fn submit(&mut self, spec: JobSpec) -> JobId {
        let id = JobId(self.jobs.len() as u64);
        self.jobs.push(JobRec {
            spec,
            admitted_at: None,
            finished_at: None,
            leaf: None,
            task: None,
            preempt_requested_at: None,
            preemptions: 0,
            stage_attempts: 0,
            faults_transient: 0,
            faults_persistent: 0,
            retries: 0,
            backoff_total: SimDur::ZERO,
            reroutes: 0,
            spilled_bytes: 0,
            reject_reason: None,
            degrade: 0,
        });
        id
    }

    /// Request cancellation of `id` at virtual time `at` (same effect as
    /// submitting the spec with [`JobSpec::cancel_at`]).
    pub fn cancel(&mut self, id: JobId, at: SimTime) {
        if let Some(rec) = self.jobs.get_mut(id.0 as usize) {
            rec.spec.cancel_at = Some(at);
        }
    }

    /// Schedule a live budget reconfiguration: at virtual time `at` the
    /// given budgets replace the ones in force. Shrinks follow
    /// [`SchedulerConfig::resize_drain`]; growths simply admit more.
    /// Queued jobs whose reservation can never fit under the new budgets
    /// are rejected when the resize lands.
    pub fn resize_budgets(&mut self, at: SimTime, budgets: NodeBudgets) {
        self.pending_resizes.push((at, budgets));
    }

    /// Replay the submitted trace in virtual time and consume the
    /// scheduler. Deterministic: same trace + same config ⇒ same report.
    /// Errors surface violated internal invariants as [`SchedError`]
    /// instead of panicking the embedding service.
    pub fn run(mut self) -> Result<SchedReport, SchedError> {
        let mut st = RunState::new(&self.tree, &self.cfg, &self.jobs);

        // Seed arrivals (and standalone cancellations of queued jobs).
        for (i, rec) in self.jobs.iter().enumerate() {
            let id = i as u64;
            st.events.push((rec.spec.arrival, EV_ARRIVAL, id, 0));
            if let Some(t) = rec.spec.cancel_at {
                st.events.push((t, EV_CANCEL, id, 0));
            }
        }
        for (i, (at, _)) in self.pending_resizes.iter().enumerate() {
            st.events.push((*at, EV_RESIZE, i as u64, 0));
        }
        // Seed the first SLO control tick only when the controller is
        // configured: with `slo: None` no control event ever exists and
        // the schedule is bit-identical to the pre-SLO engine.
        if let Some(slo) = &self.cfg.slo {
            st.slo_base_budgets = self.budgets.snapshot();
            st.events.push((SimTime::ZERO + slo.tick, EV_CONTROL, 0, 0));
            st.control_ticks = 1;
        }

        // The dispatch loop pops the global minimum each iteration. The
        // one-slot `inline_next` holds the stage-done event the previous
        // dispatch produced: when it is still the minimum (the common
        // case — a booked stage usually completes before anything else
        // fires) the calendar queue is bypassed entirely, but the order
        // dispatched is *exactly* the heap-era order because the slot is
        // re-checked against the queue head every iteration. Coexisting
        // events are never fully equal (a job has at most one in-flight
        // event per kind), so `<` is a total order here.
        loop {
            let ev = match st.inline_next.take() {
                Some(iv) => match st.events.peek() {
                    Some(head) if head < iv => {
                        st.events.push(iv);
                        match st.events.pop() {
                            Some(e) => e,
                            None => break, // unreachable: just pushed
                        }
                    }
                    _ => iv,
                },
                None => match st.events.pop() {
                    Some(e) => e,
                    None => break,
                },
            };
            let (t, kind, id, _) = ev;
            st.events_processed += 1;
            match kind {
                EV_STAGE_DONE => self.on_stage_done(&mut st, JobId(id), t)?,
                EV_RETRY => self.on_retry(&mut st, JobId(id), t)?,
                EV_CANCEL => self.on_cancel(&mut st, JobId(id), t),
                EV_RESIZE => self.on_resize(&mut st, id as usize, t)?,
                EV_QUOTA => self.on_quota(&mut st, TenantId(id as u32), t)?,
                EV_ARRIVAL => self.on_arrival(&mut st, JobId(id), t)?,
                EV_PROBE => self.on_probe(&mut st, NodeId(id as usize), t)?,
                EV_CONTROL => self.on_control(&mut st, t)?,
                other => return Err(SchedError::UnknownEvent(other)),
            }
        }

        Ok(self.into_report(st))
    }

    fn on_arrival(&mut self, st: &mut RunState, id: JobId, t: SimTime) -> Result<(), SchedError> {
        if st.hot[id.0 as usize].state.is_terminal() {
            return Ok(()); // e.g. cancelled before arrival
        }
        let rec = &self.jobs[id.0 as usize];
        let class = class_index(rec.spec.priority);
        if let Some(slo) = st.slo.as_mut() {
            slo.on_arrival(class);
        }
        if !self.budgets.feasible(&rec.spec.reservation) {
            return self.reject_arrival(st, id, t, RejectReason::Infeasible);
        }
        if st.queues.len() >= self.cfg.max_queue {
            return self.reject_arrival(st, id, t, RejectReason::QueueFull);
        }
        // Tier-1 backpressure: while the controller's dynamic cap is in
        // force, best-effort arrivals bounce off their own class queue
        // before they can poison it.
        if let Some(cap) = st.slo.as_ref().and_then(|s| s.batch_cap) {
            if rec.spec.effective_slo() == SloClass::BestEffort
                && st.queues.class_live(class) >= cap as usize
            {
                return self.reject_arrival(st, id, t, RejectReason::QueueFull);
            }
        }
        st.queues.push_back(id, class);
        self.admit_pass(st, t)?;
        if self.cfg.preempt && st.hot[id.0 as usize].state == JobState::Queued {
            self.try_preempt(st, id, t);
        }
        Ok(())
    }

    /// Settle an arrival `Rejected` with its typed reason.
    fn reject_arrival(
        &mut self,
        st: &mut RunState,
        id: JobId,
        t: SimTime,
        reason: RejectReason,
    ) -> Result<(), SchedError> {
        st.hot[id.0 as usize].state = JobState::Rejected;
        let rec = &mut self.jobs[id.0 as usize];
        rec.finished_at = Some(t);
        rec.reject_reason = Some(reason);
        Ok(())
    }

    /// One SLO control tick: sample p99-so-far, decide the tier, apply
    /// backpressure/shed/degrade/autoscale, and re-arm the next tick
    /// while the run still has pending events.
    fn on_control(&mut self, st: &mut RunState, t: SimTime) -> Result<(), SchedError> {
        // Sheddable backlog: live waiters outside the guaranteed class.
        let backlog = (st.queues.class_live(1) + st.queues.class_live(2)) as u32;
        let Some(slo) = st.slo.as_mut() else {
            return Ok(());
        };
        let tick = slo.cfg.tick.max(SimDur::from_micros(1));
        let decision = slo.tick(t, backlog);

        // Tier 4 — autoscale: grow every un-fenced node's budget to the
        // projected percentage of its original value. Growth-only, so no
        // feasibility re-check or eviction is ever needed; fenced nodes
        // keep their zero budget but their restore target scales, so a
        // later probation restore honors the new capacity.
        if decision.scale_pct > st.slo_scale_applied {
            st.slo_scale_applied = decision.scale_pct;
            let pct = u64::from(decision.scale_pct);
            for (n, &base) in st.slo_base_budgets.clone().iter().enumerate() {
                let scaled = base.saturating_mul(pct) / 100;
                let node = NodeId(n);
                if st.quarantined.contains(&node) {
                    st.pre_fence_budget[node.0] = scaled;
                } else {
                    self.budgets.set(node, scaled.max(self.budgets.get(node)));
                }
            }
            st.resize_log.push(ResizeSample {
                at: t,
                budgets: self.budgets.snapshot(),
            });
        }

        // Tier 2 — shed queued sheddable work, newest first, best-effort
        // before standard, never the guaranteed class (class 0 is never
        // scanned and `sheddable()` re-checks the per-job class).
        if decision.shed > 0 {
            let mut victims: Vec<JobId> = Vec::new();
            for want in [SloClass::BestEffort, SloClass::Standard] {
                for class in [2usize, 1] {
                    if victims.len() >= decision.shed as usize {
                        break;
                    }
                    let quota = decision.shed as usize - victims.len();
                    victims.extend(
                        st.queues
                            .class_live_rev(class)
                            .filter(|id| {
                                let spec = &self.jobs[id.0 as usize].spec;
                                spec.effective_slo() == want && spec.effective_slo().sheddable()
                            })
                            .take(quota),
                    );
                }
            }
            for id in victims {
                let tenant = self.jobs[id.0 as usize].spec.tenant;
                let over_quota =
                    self.cfg.tenant_quota.is_some() && self.quota_balance(st, tenant, t) < 0.0;
                let reason = if over_quota {
                    RejectReason::QuotaExceeded
                } else {
                    RejectReason::Shed
                };
                st.queues.remove(id);
                st.hot[id.0 as usize].state = JobState::Rejected;
                let rec = &mut self.jobs[id.0 as usize];
                rec.finished_at = Some(t);
                rec.reject_reason = Some(reason);
                let outcome = ShedOutcome {
                    job: id,
                    at: t,
                    class: rec.spec.priority,
                    reason,
                };
                if let Some(slo) = st.slo.as_mut() {
                    slo.record_shed(outcome);
                }
            }
        }

        // A scale-up may admit immediately.
        if decision.scale_pct > 100 {
            self.admit_pass(st, t)?;
        }

        // Re-arm while anything can still happen. When both the calendar
        // and the inline slot are empty, no future event exists, nothing
        // can ever complete or arrive again, and the run is about to
        // end — re-arming then would spin forever.
        if st.events.peek().is_some() || st.inline_next.is_some() {
            let ord = st.control_ticks;
            st.control_ticks += 1;
            st.events.push((t + tick, EV_CONTROL, ord, 0));
        }
        Ok(())
    }

    fn on_cancel(&mut self, st: &mut RunState, id: JobId, t: SimTime) {
        match st.hot[id.0 as usize].state {
            JobState::Queued | JobState::Preempted => {
                st.queues.remove(id);
                st.hot[id.0 as usize].state = JobState::Cancelled;
                self.jobs[id.0 as usize].finished_at = Some(t);
            }
            JobState::Admitted | JobState::Running => {
                // Honored at the chunk boundary.
                st.hot[id.0 as usize].flags |= F_CANCEL;
            }
            _ => {}
        }
    }

    /// A budget reconfiguration takes effect.
    fn on_resize(&mut self, st: &mut RunState, idx: usize, t: SimTime) -> Result<(), SchedError> {
        self.budgets = self.pending_resizes[idx].1.clone();
        // Quarantine outlives resizes: a fenced node stays at zero even
        // when the incoming budget vector would resurrect it. The
        // incoming value becomes the node's restore target, so a later
        // probation restore honors the reconfiguration.
        for &n in &st.quarantined {
            st.pre_fence_budget[n.0] = self.budgets.get(n);
            self.budgets.zero(n);
        }
        st.resize_log.push(ResizeSample {
            at: t,
            budgets: self.budgets.snapshot(),
        });
        // Queued (or evicted-and-waiting) jobs whose reservation can never
        // fit again are rejected now, so the trace still totals out.
        let waiting: Vec<JobId> = st.queues.fifo_live().collect();
        for id in waiting {
            if !self
                .budgets
                .feasible(&self.jobs[id.0 as usize].spec.reservation)
            {
                st.queues.remove(id);
                st.hot[id.0 as usize].state = JobState::Rejected;
                let rec = &mut self.jobs[id.0 as usize];
                rec.finished_at = Some(t);
                rec.reject_reason = Some(RejectReason::Infeasible);
            }
        }
        if self.cfg.resize_drain == ResizeDrain::Preempt {
            self.mark_for_resize(st, t);
        }
        self.admit_pass(st, t) // a growth may admit immediately
    }

    /// A throttled tenant's bucket has refilled past zero: retry admission.
    fn on_quota(
        &mut self,
        st: &mut RunState,
        tenant: TenantId,
        t: SimTime,
    ) -> Result<(), SchedError> {
        st.quota_wake.remove(&tenant);
        self.admit_pass(st, t)
    }

    /// A stage of the current chunk finished: book the next stage at its
    /// actual ready time, or close the chunk and decide at the boundary —
    /// cancel > done > fault-evict > resize-evict > preempt > next chunk.
    fn on_stage_done(
        &mut self,
        st: &mut RunState,
        id: JobId,
        t: SimTime,
    ) -> Result<(), SchedError> {
        let h = &mut st.hot[id.0 as usize];
        if h.chain == CHAIN_NONE {
            return Err(SchedError::MissingChain(id));
        }
        h.stage_idx += 1;
        if h.stage_idx < h.chain_len {
            return self.book_stage(st, id, t);
        }
        h.chunks_done += 1;
        h.stage_idx = 0;
        let (chunks_done, flags) = (h.chunks_done, h.flags);
        let done = h.chunks_done >= h.chunks_total;
        st.chunk_log.push(ChunkSample {
            at: t,
            job: id,
            index: chunks_done - 1,
        });
        if flags == 0 && !done {
            return self.issue_chunk(st, id, t);
        }
        if flags & F_CANCEL != 0 {
            self.finish(st, id, JobState::Cancelled, t)
        } else if done {
            self.finish(st, id, JobState::Done, t)
        } else if flags & F_FAULT != 0 {
            self.fault_evict(st, id, t)
        } else if flags & F_RESIZE != 0 {
            self.evict(st, id, t)
        } else if flags & F_PREEMPT != 0 {
            if self.eviction_still_needed(st, id) {
                self.evict(st, id, t)
            } else {
                // The pressure passed (e.g. another release already made
                // room); keep running.
                st.hot[id.0 as usize].flags &= !F_PREEMPT;
                self.jobs[id.0 as usize].preempt_requested_at = None;
                self.issue_chunk(st, id, t)
            }
        } else {
            self.issue_chunk(st, id, t)
        }
    }

    /// Start the next chunk by booking only its FIRST stage — later
    /// stages are booked as their predecessors complete, so concurrent
    /// jobs interleave on every shared resource instead of one job
    /// reserving the whole chain up front.
    fn issue_chunk(&mut self, st: &mut RunState, id: JobId, t: SimTime) -> Result<(), SchedError> {
        let h = &mut st.hot[id.0 as usize];
        h.state = JobState::Running;
        if h.chain == CHAIN_NONE {
            return Err(SchedError::MissingChain(id));
        }
        if h.chain_len == 0 {
            // All-zero work shape: every chunk completes instantly.
            let (first, total, flags) = (h.chunks_done, h.chunks_total, h.flags);
            h.chunks_done = total;
            for i in first..total {
                st.chunk_log.push(ChunkSample {
                    at: t,
                    job: id,
                    index: i,
                });
            }
            let end_state = if flags & F_CANCEL != 0 {
                JobState::Cancelled
            } else {
                JobState::Done
            };
            return self.finish(st, id, end_state, t);
        }
        self.book_stage(st, id, t)
    }

    /// Book the job's current stage (`stage_idx`) at `t`, consulting the
    /// fault plan when one is configured. A clean booking schedules
    /// `EV_STAGE_DONE` at the fabric's completion; a transient fault
    /// within the retry budget schedules `EV_RETRY` after a seeded
    /// backoff; a persistent fault (or exhausted retries, or a stage on
    /// an already-quarantined node) goes through the persistent path:
    /// count toward quarantine, then displace the job for re-placement.
    fn book_stage(&mut self, st: &mut RunState, id: JobId, t: SimTime) -> Result<(), SchedError> {
        let (stage, node): (ChainStage, NodeId) = {
            let h = &st.hot[id.0 as usize];
            if h.chain == CHAIN_NONE {
                return Err(SchedError::MissingChain(id));
            }
            let chain = st.chains.get(h.chain);
            // The serving node comes from the chain's precompiled dense
            // node vector — no per-event failure-domain re-derivation.
            (
                chain.stages[h.stage_idx as usize],
                chain.nodes[h.stage_idx as usize],
            )
        };
        if self.cfg.fault_plan.is_none() {
            let end = st.fabric.serve(&stage, t);
            st.schedule_stage_done(end, id);
            return Ok(());
        }
        if st.quarantined.contains(&node) {
            // The device is fenced mid-chunk: the stage cannot be served,
            // so the job moves off at once (its in-flight chunk restarts
            // from the checkpoint on the new leaf — no chunk runs twice).
            return self.fault_evict(st, id, t);
        }
        let ord = st.fault_ordinals[node.0];
        st.fault_ordinals[node.0] += 1;
        let attempts = self.jobs[id.0 as usize].stage_attempts;
        let (decision, jitter) = match &self.cfg.fault_plan {
            Some(plan) => (plan.decide(node, ord), plan.jitter(node, ord, attempts + 1)),
            None => (None, 0.0),
        };
        match decision {
            None => {
                self.jobs[id.0 as usize].stage_attempts = 0;
                let end = st.fabric.serve(&stage, t);
                st.schedule_stage_done(end, id);
                Ok(())
            }
            Some(FaultKind::Transient) => {
                st.fault_log.push(FaultSample {
                    at: t,
                    node,
                    job: id,
                    kind: FaultKind::Transient,
                    ordinal: ord,
                });
                let rec = &mut self.jobs[id.0 as usize];
                rec.faults_transient += 1;
                rec.stage_attempts += 1;
                if rec.stage_attempts < self.cfg.retry.max_attempts {
                    let delay = self.cfg.retry.backoff(rec.stage_attempts, jitter);
                    rec.retries += 1;
                    rec.backoff_total += delay;
                    st.events.push((t + delay, EV_RETRY, id.0, 0));
                    Ok(())
                } else {
                    // Bounded attempts exhausted: the fault is as good as
                    // persistent for this placement.
                    self.on_persistent_fault(st, id, node, t)
                }
            }
            Some(FaultKind::Persistent) => {
                st.fault_log.push(FaultSample {
                    at: t,
                    node,
                    job: id,
                    kind: FaultKind::Persistent,
                    ordinal: ord,
                });
                self.jobs[id.0 as usize].faults_persistent += 1;
                self.on_persistent_fault(st, id, node, t)
            }
        }
    }

    /// A backed-off stage retries: re-book the same stage. The plan is
    /// consulted again at a fresh ordinal, so persistent trouble on the
    /// node eventually escalates instead of retrying forever.
    fn on_retry(&mut self, st: &mut RunState, id: JobId, t: SimTime) -> Result<(), SchedError> {
        let h = &st.hot[id.0 as usize];
        if h.state != JobState::Running || h.chain == CHAIN_NONE {
            return Ok(()); // displaced or cancelled while backing off
        }
        self.book_stage(st, id, t)
    }

    /// A persistent fault on `node` (observed by `id`'s current stage):
    /// count it toward the node's quarantine threshold, fence the node
    /// when the threshold is reached, and displace the faulted job.
    fn on_persistent_fault(
        &mut self,
        st: &mut RunState,
        id: JobId,
        node: NodeId,
        t: SimTime,
    ) -> Result<(), SchedError> {
        st.node_persistent[node.0] += 1;
        if st.node_persistent[node.0] >= self.cfg.quarantine_after
            && !st.quarantined.contains(&node)
        {
            self.quarantine(st, node, t);
        }
        self.fault_evict(st, id, t)
    }

    /// Fence `node`: zero its budget, reject queued jobs whose
    /// reservation can never fit the surviving envelope, and mark
    /// in-flight jobs whose chain passes through the node so they
    /// re-route to a surviving leaf at their next chunk boundary.
    fn quarantine(&mut self, st: &mut RunState, node: NodeId, t: SimTime) {
        st.quarantined.insert(node);
        st.quarantine_log.push(QuarantineSample {
            at: t,
            node,
            faults: st.node_persistent[node.0],
        });
        st.pre_fence_budget[node.0] = self.budgets.get(node);
        self.budgets.zero(node);
        self.schedule_probe(st, node, t);
        let waiting: Vec<JobId> = st.queues.fifo_live().collect();
        for wid in waiting {
            if !self
                .budgets
                .feasible(&self.jobs[wid.0 as usize].spec.reservation)
            {
                st.queues.remove(wid);
                st.hot[wid.0 as usize].state = JobState::Rejected;
                let rec = &mut self.jobs[wid.0 as usize];
                rec.finished_at = Some(t);
                rec.reject_reason = Some(RejectReason::Infeasible);
            }
        }
        for i in 0..st.hot.len() {
            let h = st.hot[i];
            if matches!(h.state, JobState::Admitted | JobState::Running)
                && h.chain != CHAIN_NONE
                && chain_touches(st.chains.get(h.chain), node)
            {
                st.hot[i].flags |= F_FAULT;
            }
        }
    }

    /// Schedule the fenced node's next probation probe, if the policy
    /// grants it one: the `n`-th probe of a node waits
    /// `window × backoff^n` (hysteresis — a flapping node waits
    /// exponentially longer each time), and after `max_restores` probes
    /// the fence is permanent.
    fn schedule_probe(&mut self, st: &mut RunState, node: NodeId, t: SimTime) {
        let Some(p) = self.cfg.probation else {
            return;
        };
        let attempts = st.node_probes[node.0];
        if attempts >= p.max_restores {
            return; // out of chances: fenced for good
        }
        st.node_probes[node.0] = attempts + 1;
        let mult = u64::from(p.backoff.max(1)).saturating_pow(attempts.min(16));
        let window = SimDur(p.window.0.saturating_mul(mult)).max(SimDur::from_micros(1));
        st.events.push((t + window, EV_PROBE, node.0 as u64, 0));
    }

    /// A probation window elapsed: probe the fenced node by consulting
    /// the fault plan at fresh ordinals. All-clean restores the node —
    /// budget back to its pre-fence value, fresh quarantine threshold —
    /// and re-runs admission; any fault re-schedules the next (longer)
    /// probe instead.
    fn on_probe(&mut self, st: &mut RunState, node: NodeId, t: SimTime) -> Result<(), SchedError> {
        if !st.quarantined.contains(&node) {
            return Ok(()); // stale probe (already restored)
        }
        let Some(p) = self.cfg.probation else {
            return Ok(());
        };
        let clean = match &self.cfg.fault_plan {
            Some(plan) => {
                let mut clean = true;
                for _ in 0..p.probes.max(1) {
                    let ord = st.fault_ordinals[node.0];
                    st.fault_ordinals[node.0] += 1;
                    if plan.decide(node, ord).is_some() {
                        clean = false;
                        // Later ordinals stay unconsumed: the next probe
                        // re-tests the stream where this one gave up.
                        break;
                    }
                }
                clean
            }
            None => true,
        };
        if !clean {
            self.schedule_probe(st, node, t);
            return Ok(());
        }
        let budget = st.pre_fence_budget[node.0];
        self.budgets.set(node, budget);
        st.quarantined.remove(&node);
        st.node_persistent[node.0] = 0;
        st.restore_log.push(RestoreSample {
            at: t,
            node,
            attempt: st.node_probes[node.0],
            budget,
        });
        self.admit_pass(st, t)
    }

    /// Displace a faulted job: release the reservation, keep the
    /// checkpoint, and re-queue it at the front of its class so the next
    /// admission re-places it — `build_chain` re-targeting onto a
    /// surviving leaf. A job displaced more than
    /// [`SchedulerConfig::max_job_faults`] times is failed instead, and a
    /// job whose reservation cannot fit the surviving budget envelope
    /// fails too — chaos runs always terminate.
    fn fault_evict(&mut self, st: &mut RunState, id: JobId, t: SimTime) -> Result<(), SchedError> {
        {
            let rec = &mut self.jobs[id.0 as usize];
            rec.reroutes += 1;
            rec.stage_attempts = 0;
        }
        st.hot[id.0 as usize].flags &= !F_FAULT;
        if self.jobs[id.0 as usize].reroutes > self.cfg.max_job_faults {
            return self.finish(st, id, JobState::Failed, t);
        }
        self.charge_spill(st, id, t);
        self.release_capacity(st, id, t);
        {
            let h = &mut st.hot[id.0 as usize];
            h.flags &= !(F_PREEMPT | F_RESIZE);
            h.state = JobState::Preempted;
            h.stage_idx = 0;
            h.chain = CHAIN_NONE;
        }
        let rec = &mut self.jobs[id.0 as usize];
        rec.preempt_requested_at = None;
        if let (Some(leaf), Some(task)) = (rec.leaf, rec.task.take()) {
            st.wq.complete(leaf, task);
        }
        rec.leaf = None;
        st.admission_log.push(AdmissionEvent {
            at: t,
            job: id,
            kind: AdmissionEventKind::FaultEvicted,
        });
        st.active -= 1;
        if self
            .budgets
            .feasible(&self.jobs[id.0 as usize].spec.reservation)
        {
            let class = class_index(self.jobs[id.0 as usize].spec.priority);
            st.queues.push_front(id, class);
        } else {
            // Its reserved node was fenced: the job lost its device.
            st.hot[id.0 as usize].state = JobState::Failed;
            self.jobs[id.0 as usize].finished_at = Some(t);
        }
        self.admit_pass(st, t)
    }

    /// Commit the reservation, place the job, and start its next chunk
    /// (the first for fresh admissions, the checkpoint for resumed ones).
    fn admit(&mut self, st: &mut RunState, id: JobId, t: SimTime) -> Result<(), SchedError> {
        debug_assert!(matches!(
            st.hot[id.0 as usize].state,
            JobState::Queued | JobState::Preempted
        ));
        let rec = &mut self.jobs[id.0 as usize];
        // Reservation nodes are bounded by the tree (anything beyond it
        // has zero budget and was rejected as infeasible at arrival), so
        // the dense commit vectors index directly.
        for (n, b) in rec.spec.reservation.iter() {
            let e = &mut st.committed[n.0];
            *e += b;
            if *e > st.max_committed[n.0] {
                st.max_committed[n.0] = *e;
            }
            st.capacity_trace.push(CapacitySample {
                at: t,
                node: n,
                committed: *e,
            });
        }
        rec.admitted_at = Some(t);
        st.hot[id.0 as usize].state = JobState::Admitted;
        st.admission_order.push(id);
        st.admission_log.push(AdmissionEvent {
            at: t,
            job: id,
            kind: AdmissionEventKind::Admitted,
        });
        st.active += 1;

        let name = self.jobs[id.0 as usize].spec.name.clone();
        let done = {
            let h = &st.hot[id.0 as usize];
            h.chunks_done >= h.chunks_total
        };

        // Placement: the leaf whose subtree (child-of-root anchor) has the
        // shallowest work queues; ties break toward the lowest leaf id.
        // A resumed job is re-placed — only its checkpoint survives
        // eviction, not its slot. Quarantined nodes are avoided; when the
        // fences leave no usable leaf the job fails (graceful, terminal)
        // instead of erroring the whole run.
        let leaf = match self.place(st) {
            Ok(leaf) => leaf,
            Err(SchedError::NoLeaf) if !st.quarantined.is_empty() => {
                return self.finish(st, id, JobState::Failed, t);
            }
            Err(e) => return Err(e),
        };
        let queue = st.wq.shortest_queue(leaf);
        let task = st.wq.enqueue(leaf, queue, name);
        // Brownout: while the degradation tier is engaged, non-guaranteed
        // admissions compile a shrunken chain. Distinct degrade levels
        // produce distinct work shapes, so the arena interns them as
        // separate chains — no cross-contamination with full fidelity.
        let degrade = match &st.slo {
            Some(s) => s.degrade_for(self.jobs[id.0 as usize].spec.effective_slo()),
            None => DegradeLevel::None,
        };
        let work = degrade
            .apply(&self.jobs[id.0 as usize].spec.work)
            .chunk_work();
        let chain = st.chains.intern(&self.tree, leaf, work);
        let chain_len = st.chains.get(chain).stages.len() as u16;
        let rec = &mut self.jobs[id.0 as usize];
        rec.leaf = Some(leaf);
        rec.task = Some(task);
        rec.degrade = rec.degrade.max(degrade.rank());
        let h = &mut st.hot[id.0 as usize];
        h.chain = chain;
        h.chain_len = chain_len;
        h.stage_idx = 0;

        if done {
            self.finish(st, id, JobState::Done, t)
        } else {
            self.issue_chunk(st, id, t)
        }
    }

    /// Placement: the least fault-pressured leaf (with
    /// [`SchedulerConfig::fault_aware_placement`]; pressure is zero for
    /// every leaf otherwise) whose subtree has the shallowest work
    /// queues; ties break toward the lowest leaf id. Pressure dominates
    /// depth so chains drift off a sickening node *before* its
    /// quarantine threshold trips.
    fn place(&self, st: &RunState) -> Result<NodeId, SchedError> {
        let mut best: Option<(u64, usize, NodeId)> = None;
        for leaf in self.tree.leaves() {
            if path_quarantined(&self.tree, &st.quarantined, leaf.id) {
                continue;
            }
            let anchor = subtree_anchor(&self.tree, leaf.id);
            let depth = st.wq.subtree_depth(&self.tree, anchor);
            let pressure = if self.cfg.fault_aware_placement {
                path_fault_pressure(&self.tree, &st.node_persistent, leaf.id)
            } else {
                0
            };
            let key = (pressure, depth, leaf.id);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        best.map(|(_, _, leaf)| leaf).ok_or(SchedError::NoLeaf)
    }

    /// Charge the victim's in-flight staging ring — its per-chunk
    /// transfer footprint — as a root-store writeback at an eviction
    /// boundary ([`SchedulerConfig::charge_spill`]). The writeback
    /// FIFO-queues on the shared root resource, so the cost of choosing
    /// evict over drain is visible in later bookings, the
    /// [`SchedReport::spill_log`], and the victim's
    /// [`JobOutcome::spilled_bytes`].
    fn charge_spill(&mut self, st: &mut RunState, id: JobId, t: SimTime) {
        if !self.cfg.charge_spill {
            return;
        }
        let bytes = self.jobs[id.0 as usize].spec.work.xfer_bytes;
        if bytes == 0 {
            return;
        }
        let done = st.fabric.spill_writeback(t, bytes);
        self.jobs[id.0 as usize].spilled_bytes += bytes;
        st.spill_log.push(SpillSample {
            at: t,
            job: id,
            bytes,
            done,
        });
    }

    /// Credit the reservation back and sample the capacity trace (shared
    /// by terminal release and eviction).
    fn release_capacity(&mut self, st: &mut RunState, id: JobId, t: SimTime) {
        let (tenant, held, since) = {
            let rec = &self.jobs[id.0 as usize];
            (
                rec.spec.tenant,
                rec.spec.reservation.total(),
                rec.admitted_at,
            )
        };
        if let Some(since) = since {
            // Post-paid quota: byte-seconds of held capacity this residency.
            let byte_secs = held as f64 * (t - since).as_secs_f64();
            self.quota_charge(st, tenant, byte_secs, t);
        }
        let rec = &mut self.jobs[id.0 as usize];
        for (n, b) in rec.spec.reservation.iter() {
            let e = &mut st.committed[n.0];
            *e = e.saturating_sub(b);
            st.capacity_trace.push(CapacitySample {
                at: t,
                node: n,
                committed: *e,
            });
        }
    }

    fn finish(
        &mut self,
        st: &mut RunState,
        id: JobId,
        state: JobState,
        t: SimTime,
    ) -> Result<(), SchedError> {
        debug_assert!(state.is_terminal());
        self.release_capacity(st, id, t);
        st.hot[id.0 as usize].state = state;
        let rec = &mut self.jobs[id.0 as usize];
        rec.finished_at = Some(t);
        if let (Some(leaf), Some(task)) = (rec.leaf, rec.task.take()) {
            st.wq.complete(leaf, task);
        }
        // Feed the SLO sampler: completion latency in virtual time,
        // arrival-to-done (what the submitter experiences).
        if state == JobState::Done {
            let class = class_index(rec.spec.priority);
            let latency = t - rec.spec.arrival;
            if let Some(slo) = st.slo.as_mut() {
                slo.on_completion(class, latency);
            }
        }
        st.admission_log.push(AdmissionEvent {
            at: t,
            job: id,
            kind: AdmissionEventKind::Released,
        });
        st.active -= 1;
        self.admit_pass(st, t)
    }

    /// Evict a running job at its chunk boundary: release the
    /// reservation, keep the checkpoint, and re-queue it at the front of
    /// its class so it resumes as soon as capacity returns.
    fn evict(&mut self, st: &mut RunState, id: JobId, t: SimTime) -> Result<(), SchedError> {
        self.charge_spill(st, id, t);
        self.release_capacity(st, id, t);
        let rec = &mut self.jobs[id.0 as usize];
        if let Some(at) = rec.preempt_requested_at.take() {
            st.preemption_latencies.push(t - at);
        }
        rec.preemptions += 1;
        if let (Some(leaf), Some(task)) = (rec.leaf, rec.task.take()) {
            st.wq.complete(leaf, task);
        }
        rec.leaf = None;
        {
            let h = &mut st.hot[id.0 as usize];
            h.flags &= !(F_PREEMPT | F_RESIZE);
            h.state = JobState::Preempted;
            h.stage_idx = 0;
            h.chain = CHAIN_NONE;
        }
        st.admission_log.push(AdmissionEvent {
            at: t,
            job: id,
            kind: AdmissionEventKind::Preempted,
        });
        st.active -= 1;
        if self
            .budgets
            .feasible(&self.jobs[id.0 as usize].spec.reservation)
        {
            // Front of the class: the victim has seniority and resumes as
            // soon as capacity returns.
            let class = class_index(self.jobs[id.0 as usize].spec.priority);
            st.queues.push_front(id, class);
        } else {
            // Evicted by a shrink below its own reservation: it can never
            // be re-admitted, so reject rather than queue forever.
            st.hot[id.0 as usize].state = JobState::Rejected;
            let rec = &mut self.jobs[id.0 as usize];
            rec.finished_at = Some(t);
            rec.reject_reason = Some(RejectReason::Infeasible);
        }
        self.admit_pass(st, t)
    }

    /// Revalidation at the boundary: is some strictly-higher-priority
    /// queued job still blocked on capacity? If not, the pressure that
    /// marked this victim has passed and the eviction is cancelled.
    fn eviction_still_needed(&self, st: &RunState, victim: JobId) -> bool {
        let vw = self.jobs[victim.0 as usize].spec.priority.weight();
        st.queues.fifo_live().any(|q| {
            let r = &self.jobs[q.0 as usize];
            r.spec.priority.weight() > vw && !self.budgets.fits(&st.committed, &r.spec.reservation)
        })
    }

    /// A queued arrival that does not fit marks strictly-lower-priority
    /// running jobs (lowest priority first, most recently admitted first)
    /// for eviction at their next chunk boundary, until the projected
    /// released capacity makes room. If even evicting every candidate
    /// would not make room, nothing is marked.
    fn try_preempt(&mut self, st: &mut RunState, id: JobId, t: SimTime) {
        let (res, my_w) = {
            let r = &self.jobs[id.0 as usize];
            (r.spec.reservation.clone(), r.spec.priority.weight())
        };
        let mut eff: Vec<u64> = st.committed.clone();
        for (i, h) in st.hot.iter().enumerate() {
            if h.flags & (F_PREEMPT | F_RESIZE) != 0
                && matches!(h.state, JobState::Admitted | JobState::Running)
            {
                for (n, b) in self.jobs[i].spec.reservation.iter() {
                    eff[n.0] = eff[n.0].saturating_sub(b);
                }
            }
        }
        if self.budgets.fits(&eff, &res) {
            return; // pending evictions already make room
        }
        let mut cands: Vec<JobId> = st
            .hot
            .iter()
            .enumerate()
            .filter(|(i, h)| {
                matches!(h.state, JobState::Admitted | JobState::Running)
                    && h.flags & (F_PREEMPT | F_RESIZE | F_CANCEL) == 0
                    && self.jobs[*i].spec.priority.weight() < my_w
            })
            .map(|(i, _)| JobId(i as u64))
            .collect();
        cands.sort_by_key(|&j| {
            let r = &self.jobs[j.0 as usize];
            (r.spec.priority.weight(), Reverse(r.admitted_at), Reverse(j))
        });
        let mut marked = Vec::new();
        for v in cands {
            // Targeted placement: skip victims whose eviction frees no
            // byte on any node that is actually blocking this arrival.
            // The old first-lower-class choice evicted in pure class
            // order and could displace a job on an uncontended node
            // while the arrival stayed stuck (and the bystander's
            // eviction was wasted work).
            let helps = self.jobs[v.0 as usize]
                .spec
                .reservation
                .iter()
                .any(|(n, b)| b > 0 && eff[n.0].saturating_add(res.get(n)) > self.budgets.get(n));
            if !helps {
                continue;
            }
            st.hot[v.0 as usize].flags |= F_PREEMPT;
            self.jobs[v.0 as usize].preempt_requested_at = Some(t);
            marked.push(v);
            for (n, b) in self.jobs[v.0 as usize].spec.reservation.iter() {
                eff[n.0] = eff[n.0].saturating_sub(b);
            }
            if self.budgets.fits(&eff, &res) {
                return;
            }
        }
        // Insufficient even after marking everything that helps: undo,
        // the job must wait for same-or-higher-priority releases anyway.
        for v in marked {
            st.hot[v.0 as usize].flags &= !F_PREEMPT;
            self.jobs[v.0 as usize].preempt_requested_at = None;
        }
    }

    /// After a shrink with [`ResizeDrain::Preempt`]: mark running jobs
    /// (lowest priority first, most recently admitted first) whose
    /// reservation touches an over-budget node, until the projected
    /// commitment fits everywhere.
    fn mark_for_resize(&mut self, st: &mut RunState, t: SimTime) {
        let mut eff: Vec<u64> = st.committed.clone();
        for (i, h) in st.hot.iter().enumerate() {
            if h.flags & (F_PREEMPT | F_RESIZE) != 0
                && matches!(h.state, JobState::Admitted | JobState::Running)
            {
                for (n, b) in self.jobs[i].spec.reservation.iter() {
                    eff[n.0] = eff[n.0].saturating_sub(b);
                }
            }
        }
        let over = |eff: &[u64], budgets: &NodeBudgets| -> bool {
            eff.iter()
                .enumerate()
                .any(|(n, &c)| c > budgets.get(NodeId(n)))
        };
        if !over(&eff, &self.budgets) {
            return;
        }
        let mut cands: Vec<JobId> = st
            .hot
            .iter()
            .enumerate()
            .filter(|(_, h)| {
                matches!(h.state, JobState::Admitted | JobState::Running)
                    && h.flags & (F_PREEMPT | F_RESIZE | F_CANCEL) == 0
            })
            .map(|(i, _)| JobId(i as u64))
            .collect();
        cands.sort_by_key(|&j| {
            let r = &self.jobs[j.0 as usize];
            (r.spec.priority.weight(), Reverse(r.admitted_at), Reverse(j))
        });
        for v in cands {
            if !over(&eff, &self.budgets) {
                break;
            }
            let helps = self.jobs[v.0 as usize]
                .spec
                .reservation
                .iter()
                .any(|(n, _)| eff[n.0] > self.budgets.get(n));
            if !helps {
                continue;
            }
            st.hot[v.0 as usize].flags |= F_RESIZE;
            self.jobs[v.0 as usize].preempt_requested_at = Some(t);
            for (n, b) in self.jobs[v.0 as usize].spec.reservation.iter() {
                eff[n.0] = eff[n.0].saturating_sub(b);
            }
        }
    }

    // ---- per-tenant token-bucket quotas ------------------------------

    /// Refresh and return the tenant's byte-second balance at `t`.
    fn quota_balance(&self, st: &mut RunState, tenant: TenantId, t: SimTime) -> f64 {
        let Some(q) = self.cfg.tenant_quota else {
            return 0.0;
        };
        let qs = st.quota.entry(tenant).or_insert(QuotaState {
            tokens: q.burst,
            last: SimTime::ZERO,
        });
        let dt = (t - qs.last).as_secs_f64();
        qs.tokens = (qs.tokens + dt * q.refill).min(q.burst);
        qs.last = t;
        qs.tokens
    }

    /// Whether the tenant's balance permits an admission right now.
    fn quota_ok(&self, st: &mut RunState, tenant: TenantId, t: SimTime) -> bool {
        self.cfg.tenant_quota.is_none() || self.quota_balance(st, tenant, t) >= 0.0
    }

    /// Deduct `byte_secs` from the tenant's bucket (post-paid: the
    /// balance may go negative, throttling future admissions).
    fn quota_charge(&self, st: &mut RunState, tenant: TenantId, byte_secs: f64, t: SimTime) {
        if self.cfg.tenant_quota.is_none() {
            return;
        }
        self.quota_balance(st, tenant, t);
        if let Some(qs) = st.quota.get_mut(&tenant) {
            qs.tokens -= byte_secs;
        }
    }

    /// Schedule (deduplicated) the virtual time at which a throttled
    /// tenant's balance refills past zero, so admission retries exactly
    /// then instead of busy-polling.
    fn schedule_quota_wake(&self, st: &mut RunState, tenant: TenantId, t: SimTime) {
        let Some(q) = self.cfg.tenant_quota else {
            return;
        };
        let bal = self.quota_balance(st, tenant, t);
        if bal >= 0.0 {
            return;
        }
        // `refill` is clamped ≥ 1 byte-sec/s, so the wait is finite; the
        // floor keeps rounding from producing a same-instant event loop.
        let wait = SimDur::from_secs_f64(-bal / q.refill).max(SimDur::from_micros(1));
        let wake = t + wait;
        match st.quota_wake.get(&tenant) {
            Some(&pending) if pending <= wake => {}
            _ => {
                st.quota_wake.insert(tenant, wake);
                st.events.push((wake, EV_QUOTA, tenant.0 as u64, 0));
            }
        }
    }

    /// One admission pass at virtual time `t`: admit every queued job the
    /// policy allows until nothing more fits.
    fn admit_pass(&mut self, st: &mut RunState, t: SimTime) -> Result<(), SchedError> {
        match self.cfg.policy {
            AdmissionPolicy::Fifo => {
                // Strict serialization: whole machine to one job at a time.
                while st.active == 0 {
                    let Some(id) = st.queues.fifo_head() else {
                        break;
                    };
                    let tenant = self.jobs[id.0 as usize].spec.tenant;
                    if !self.quota_ok(st, tenant, t) {
                        self.schedule_quota_wake(st, tenant, t);
                        break;
                    }
                    st.queues.remove(id);
                    self.admit(st, id, t)?;
                }
                Ok(())
            }
            AdmissionPolicy::WeightedFair => self.fair_pass(st, t),
        }
    }

    fn fair_pass(&mut self, st: &mut RunState, t: SimTime) -> Result<(), SchedError> {
        // Refresh credits once per pass for classes with waiters.
        for (c, p) in Priority::ALL.iter().enumerate() {
            if st.queues.class_head(c).is_some() {
                st.credits[c] += p.weight();
            }
        }
        loop {
            // Candidate classes by (credits desc, class rank asc).
            let mut order: Vec<usize> = (0..Priority::ALL.len())
                .filter(|&c| st.queues.class_head(c).is_some())
                .collect();
            if order.is_empty() {
                return Ok(());
            }
            order.sort_by_key(|&c| (Reverse(st.credits[c]), c));

            // Starvation guard: once a class head has been bypassed
            // `aging_limit` times, only it may admit until it does.
            if let Some(b) = st.blocked_class {
                match st.queues.class_head(b) {
                    None => st.blocked_class = None,
                    Some(id) => {
                        if self
                            .budgets
                            .fits(&st.committed, &self.jobs[id.0 as usize].spec.reservation)
                        {
                            let tenant = self.jobs[id.0 as usize].spec.tenant;
                            if !self.quota_ok(st, tenant, t) {
                                self.schedule_quota_wake(st, tenant, t);
                                if self.cfg.quota_fair {
                                    // The head is held back by its tenant's
                                    // quota, not by class starvation: drop
                                    // the block (and the aging it banked)
                                    // so the rest of the machine keeps
                                    // admitting while the bucket refills.
                                    st.blocked_class = None;
                                    st.starve[b] = 0;
                                    continue;
                                }
                                return Ok(()); // throttled; retry at the wake
                            }
                            st.queues.remove(id);
                            st.credits[b] = 0;
                            st.starve[b] = 0;
                            st.blocked_class = None;
                            self.admit(st, id, t)?;
                            continue;
                        }
                        return Ok(()); // must wait for the blocked class's head
                    }
                }
            }

            let mut admitted = false;
            for (rank, &c) in order.iter().enumerate() {
                let id = match st.queues.class_head(c) {
                    Some(id) => id,
                    None => continue,
                };
                if !self
                    .budgets
                    .fits(&st.committed, &self.jobs[id.0 as usize].spec.reservation)
                {
                    continue;
                }
                let tenant = self.jobs[id.0 as usize].spec.tenant;
                if !self.quota_ok(st, tenant, t) {
                    self.schedule_quota_wake(st, tenant, t);
                    continue; // the class is throttled, not blocked
                }
                if rank > 0 {
                    // Overtook the head of every higher-credit class.
                    for &hc in &order[..rank] {
                        if self.cfg.quota_fair {
                            // A class whose head is quota-throttled was
                            // not starved of capacity — it spent its own
                            // budget. Don't let it bank aging credit
                            // (and eventually block the machine) while
                            // throttled.
                            if let Some(hid) = st.queues.class_head(hc) {
                                let ht = self.jobs[hid.0 as usize].spec.tenant;
                                if !self.quota_ok(st, ht, t) {
                                    continue;
                                }
                            }
                        }
                        st.starve[hc] += 1;
                        if st.starve[hc] >= self.cfg.aging_limit {
                            st.blocked_class = Some(hc);
                        }
                    }
                }
                st.queues.remove(id);
                st.credits[c] = 0;
                st.starve[c] = 0;
                self.admit(st, id, t)?;
                admitted = true;
                break;
            }
            if !admitted {
                return Ok(());
            }
        }
    }

    fn into_report(self, mut st: RunState) -> SchedReport {
        // Pull the controller's logs out before `st.hot` is borrowed by
        // the outcome map below.
        let (shed_log, slo_log, capacity_needed_pct) = match st.slo.take() {
            Some(slo) => (slo.sheds, slo.log, slo.needed_pct),
            None => (Vec::new(), Vec::new(), 100),
        };
        let jobs: Vec<JobOutcome> = self
            .jobs
            .into_iter()
            .zip(&st.hot)
            .enumerate()
            .map(|(i, (rec, h))| JobOutcome {
                id: JobId(i as u64),
                name: rec.spec.name,
                tenant: rec.spec.tenant,
                priority: rec.spec.priority,
                state: h.state,
                arrival: rec.spec.arrival,
                admitted_at: rec.admitted_at,
                finished_at: rec.finished_at,
                leaf: rec.leaf,
                reservation: rec.spec.reservation,
                chunks_done: h.chunks_done,
                preemptions: rec.preemptions,
                fault: FaultOutcome {
                    transient: rec.faults_transient,
                    persistent: rec.faults_persistent,
                    retries: rec.retries,
                    backoff: rec.backoff_total,
                    reroutes: rec.reroutes,
                },
                spilled_bytes: rec.spilled_bytes,
                reject_reason: rec.reject_reason,
                degrade: rec.degrade,
            })
            .collect();

        let makespan = jobs
            .iter()
            .filter_map(|j| j.finished_at)
            .max()
            .map(|end| end - SimTime::ZERO)
            .unwrap_or(SimDur::ZERO);
        let done = jobs.iter().filter(|j| j.state == JobState::Done).count();
        let secs = makespan.as_secs_f64();
        let throughput = if secs > 0.0 { done as f64 / secs } else { 0.0 };

        let mut lats: Vec<SimDur> = jobs.iter().filter_map(JobOutcome::latency).collect();
        lats.sort();
        let pct = |p: usize| -> SimDur {
            if lats.is_empty() {
                SimDur::ZERO
            } else {
                lats[(lats.len() - 1) * p / 100]
            }
        };
        let rejected = jobs
            .iter()
            .filter(|j| j.state == JobState::Rejected)
            .count();
        let rejection_rate = if jobs.is_empty() {
            0.0
        } else {
            rejected as f64 / jobs.len() as f64
        };

        SchedReport {
            makespan,
            throughput,
            p50_latency: pct(50),
            p99_latency: pct(99),
            rejection_rate,
            admission_order: st.admission_order,
            admission_log: st.admission_log,
            capacity_trace: st.capacity_trace,
            max_committed: st.max_committed,
            chunk_log: st.chunk_log,
            resize_log: st.resize_log,
            preemption_latencies: st.preemption_latencies,
            fault_log: st.fault_log,
            quarantine_log: st.quarantine_log,
            restore_log: st.restore_log,
            spill_log: st.spill_log,
            shed_log,
            slo_log,
            capacity_needed_pct,
            events: st.events_processed,
            jobs,
        }
    }
}

/// Per-tenant token-bucket state (lazy refill).
#[derive(Debug, Clone, Copy)]
struct QuotaState {
    tokens: f64,
    last: SimTime,
}

/// Sentinel sequence number of a job with no live queue entry.
const NOT_QUEUED: u64 = u64::MAX;

/// The waiting-job queues with O(1) removal. Class order and global
/// FIFO order are mirrored entry lists of `(job, seq)` pairs; a job's
/// live `seq` sits in a dense per-job slot. Removing a job just bumps
/// its slot to [`NOT_QUEUED`] — stale entries are skipped lazily when
/// a head is read. This replaces the heap-era engine's O(queue-depth)
/// `retain` scans on every admission, the dominant cost once a
/// 10^6-job trace holds thousands of waiters (see DESIGN.md §12).
struct JobQueues {
    class: [VecDeque<(JobId, u64)>; 3],
    fifo: VecDeque<(JobId, u64)>,
    /// `slot[job]` = seq of the job's live entries, [`NOT_QUEUED`] if none.
    slot: Vec<u64>,
    /// `cls[job]` = class of the job's live entries (valid only while
    /// queued; lets `remove` keep the per-class counts without a lookup).
    cls: Vec<u8>,
    next_seq: u64,
    waiting: usize,
    /// Live waiters per class (the controller's backpressure counts).
    live: [usize; 3],
}

impl JobQueues {
    fn new(jobs: usize) -> Self {
        JobQueues {
            class: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            fifo: VecDeque::new(),
            slot: vec![NOT_QUEUED; jobs],
            cls: vec![0; jobs],
            next_seq: 0,
            waiting: 0,
            live: [0; 3],
        }
    }

    /// Live waiters (the backpressure count).
    fn len(&self) -> usize {
        self.waiting
    }

    /// Live waiters in class `c`.
    fn class_live(&self, c: usize) -> usize {
        self.live[c]
    }

    fn enqueue_seq(&mut self, id: JobId, class: usize) -> u64 {
        debug_assert_eq!(self.slot[id.0 as usize], NOT_QUEUED, "job double-queued");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slot[id.0 as usize] = seq;
        self.cls[id.0 as usize] = class as u8;
        self.waiting += 1;
        self.live[class] += 1;
        seq
    }

    fn push_back(&mut self, id: JobId, class: usize) {
        let seq = self.enqueue_seq(id, class);
        self.class[class].push_back((id, seq));
        self.fifo.push_back((id, seq));
    }

    /// Front-of-class requeue (evicted jobs keep their seniority).
    fn push_front(&mut self, id: JobId, class: usize) {
        let seq = self.enqueue_seq(id, class);
        self.class[class].push_front((id, seq));
        self.fifo.push_front((id, seq));
    }

    /// Remove the job from both orders — O(1), lazy.
    fn remove(&mut self, id: JobId) {
        if self.slot[id.0 as usize] != NOT_QUEUED {
            self.slot[id.0 as usize] = NOT_QUEUED;
            self.waiting -= 1;
            self.live[usize::from(self.cls[id.0 as usize])] -= 1;
        }
    }

    /// Live jobs of class `c`, newest first (the shed victim order:
    /// the most recent arrival has the least sunk queueing investment).
    fn class_live_rev(&self, c: usize) -> impl Iterator<Item = JobId> + '_ {
        self.class[c]
            .iter()
            .rev()
            .filter(|&&(id, seq)| self.slot[id.0 as usize] == seq)
            .map(|&(id, _)| id)
    }

    /// Prune stale entries, then peek the head of class `c`.
    fn class_head(&mut self, c: usize) -> Option<JobId> {
        while let Some(&(id, seq)) = self.class[c].front() {
            if self.slot[id.0 as usize] == seq {
                return Some(id);
            }
            self.class[c].pop_front();
        }
        None
    }

    /// Prune stale entries, then peek the global FIFO head.
    fn fifo_head(&mut self) -> Option<JobId> {
        while let Some(&(id, seq)) = self.fifo.front() {
            if self.slot[id.0 as usize] == seq {
                return Some(id);
            }
            self.fifo.pop_front();
        }
        None
    }

    /// Live jobs in FIFO order (stale entries skipped, not pruned).
    fn fifo_live(&self) -> impl Iterator<Item = JobId> + '_ {
        self.fifo
            .iter()
            .filter(|&&(id, seq)| self.slot[id.0 as usize] == seq)
            .map(|&(id, _)| id)
    }
}

/// Interned compiled chains, keyed by (leaf, per-chunk work shape). A
/// trace has a handful of work shapes and a tree has a handful of
/// leaves, so a million admissions resolve to a few dozen compiled
/// chains instead of a `build_chain` allocation each. The scheduler
/// walks `stages`/`nodes` and reads chunk counts from the job itself,
/// so the shared chains compile with `chunks = 1`.
struct ChainArena {
    chains: Vec<ChunkChain>,
    index: BTreeMap<(usize, u64, u64, u64, u64), u32>,
}

impl ChainArena {
    fn new() -> Self {
        ChainArena {
            chains: Vec::new(),
            index: BTreeMap::new(),
        }
    }

    /// The arena index of the chain for `work` on `leaf`, compiling and
    /// caching it on first use.
    fn intern(&mut self, tree: &Tree, leaf: NodeId, work: ChunkWork) -> u32 {
        let key = (
            leaf.0,
            work.read_bytes,
            work.xfer_bytes,
            work.compute.0,
            work.write_bytes,
        );
        if let Some(&idx) = self.index.get(&key) {
            return idx;
        }
        let idx = self.chains.len() as u32;
        self.chains.push(build_chain(tree, leaf, work, 1));
        self.index.insert(key, idx);
        idx
    }

    fn get(&self, idx: u32) -> &ChunkChain {
        &self.chains[idx as usize]
    }
}

/// Per-run mutable state, kept out of `JobScheduler` so `run` borrows
/// stay simple.
struct RunState {
    /// (time, kind, job, seq) pending events, popped in ascending order.
    events: CalendarQueue,
    /// One-slot successor buffer: the stage-done event the latest
    /// booking produced, held out of the calendar while it is a
    /// candidate minimum. The run loop re-checks it against the queue
    /// head before dispatching, so the schedule is exactly the heap
    /// engine's order with most push+pop pairs elided.
    inline_next: Option<Event>,
    /// Dense per-event job state ([`HotJob`]), indexed by `JobId.0` —
    /// the only per-job array the stage-done hot path touches.
    hot: Vec<HotJob>,
    queues: JobQueues,
    credits: [u64; 3],
    starve: [u32; 3],
    blocked_class: Option<usize>,
    /// Committed / peak committed bytes per node, dense by `NodeId.0`.
    committed: Vec<u64>,
    max_committed: Vec<u64>,
    chains: ChainArena,
    capacity_trace: Vec<CapacitySample>,
    admission_order: Vec<JobId>,
    admission_log: Vec<AdmissionEvent>,
    chunk_log: Vec<ChunkSample>,
    resize_log: Vec<ResizeSample>,
    preemption_latencies: Vec<SimDur>,
    quota: BTreeMap<TenantId, QuotaState>,
    quota_wake: BTreeMap<TenantId, SimTime>,
    active: usize,
    fabric: SimFabric,
    wq: WorkQueues,
    /// Per-node operation ordinals the fault plan keys its decisions on
    /// (index = `NodeId.0`). Advance only when a plan is configured, so
    /// fault-free runs stay byte-identical to pre-fault schedules.
    fault_ordinals: Vec<u64>,
    /// Persistent faults observed per node (index = `NodeId.0`).
    node_persistent: Vec<u32>,
    /// Fenced nodes: zero budget, no placements, no stage bookings.
    quarantined: BTreeSet<NodeId>,
    fault_log: Vec<FaultSample>,
    quarantine_log: Vec<QuarantineSample>,
    /// Probation probes granted per node so far (index = `NodeId.0`);
    /// bounds restores and drives the hysteresis window growth.
    node_probes: Vec<u32>,
    /// Budget each fenced node gets back if probation restores it
    /// (index = `NodeId.0`, meaningful only while the node is fenced).
    pre_fence_budget: Vec<u64>,
    restore_log: Vec<RestoreSample>,
    spill_log: Vec<SpillSample>,
    /// SLO feedback-controller state, `Some` only when
    /// [`SchedulerConfig::slo`] is configured.
    slo: Option<SloState>,
    /// Control ticks scheduled so far (the `EV_CONTROL` event id, so
    /// tick events are unique and ordered in the calendar).
    control_ticks: u64,
    /// Budgets at run start — the 100% reference the autoscale tier
    /// scales from (empty when no controller is configured).
    slo_base_budgets: Vec<u64>,
    /// Capacity scale currently applied by the autoscale tier, percent.
    slo_scale_applied: u32,
    /// Events the run loop processed (the events/sec numerator).
    events_processed: u64,
}

impl RunState {
    fn new(tree: &Tree, cfg: &SchedulerConfig, jobs: &[JobRec]) -> Self {
        RunState {
            events: CalendarQueue::new(),
            inline_next: None,
            hot: jobs
                .iter()
                .map(|rec| HotJob {
                    chain: CHAIN_NONE,
                    // The migration hook: a job checkpointed elsewhere
                    // starts past its already-completed chunks (clamped
                    // so a stale checkpoint cannot promise more chunks
                    // than the work declares).
                    chunks_done: rec.spec.start_chunk.min(rec.spec.work.chunks),
                    chunks_total: rec.spec.work.chunks,
                    stage_idx: 0,
                    chain_len: 0,
                    state: JobState::Queued,
                    flags: 0,
                })
                .collect(),
            queues: JobQueues::new(jobs.len()),
            credits: [0; 3],
            starve: [0; 3],
            blocked_class: None,
            committed: vec![0; tree.len()],
            max_committed: vec![0; tree.len()],
            chains: ChainArena::new(),
            capacity_trace: Vec::new(),
            admission_order: Vec::new(),
            admission_log: Vec::new(),
            chunk_log: Vec::new(),
            resize_log: Vec::new(),
            preemption_latencies: Vec::new(),
            quota: BTreeMap::new(),
            quota_wake: BTreeMap::new(),
            active: 0,
            fabric: SimFabric::new(tree),
            wq: WorkQueues::new(tree, cfg.queues_per_node.max(1)),
            fault_ordinals: vec![0; tree.len()],
            node_persistent: vec![0; tree.len()],
            quarantined: BTreeSet::new(),
            fault_log: Vec::new(),
            quarantine_log: Vec::new(),
            node_probes: vec![0; tree.len()],
            pre_fence_budget: vec![0; tree.len()],
            restore_log: Vec::new(),
            spill_log: Vec::new(),
            slo: cfg.slo.clone().map(SloState::new),
            control_ticks: 0,
            slo_base_budgets: Vec::new(),
            slo_scale_applied: 100,
            events_processed: 0,
        }
    }

    /// Enqueue a stage completion through the one-slot inline buffer:
    /// keep the smaller of (slot, new event) inline, push the other.
    /// The run loop's head re-check makes the dispatch order identical
    /// to a global min-heap — this only elides the queue round-trip in
    /// the common case where the freshly booked stage fires next.
    fn schedule_stage_done(&mut self, end: SimTime, id: JobId) {
        let ev = (end, EV_STAGE_DONE, id.0, 0);
        match self.inline_next {
            None => self.inline_next = Some(ev),
            Some(cur) if ev < cur => {
                self.events.push(cur);
                self.inline_next = Some(ev);
            }
            Some(_) => self.events.push(ev),
        }
    }
}

/// The class-queue index of a priority. Total by construction — the
/// match mirrors `Priority::ALL`'s order, so no lookup can fail.
fn class_index(p: Priority) -> usize {
    match p {
        Priority::Interactive => 0,
        Priority::Normal => 1,
        Priority::Batch => 2,
    }
}

/// Whether any node on the root→`leaf` path (both endpoints included) is
/// quarantined. The root carries the Read/WriteBack stages, so a fenced
/// root blocks every leaf.
fn path_quarantined(tree: &Tree, quarantined: &BTreeSet<NodeId>, leaf: NodeId) -> bool {
    if quarantined.is_empty() {
        return false;
    }
    let mut cur = leaf;
    loop {
        if quarantined.contains(&cur) {
            return true;
        }
        match tree.parent(cur) {
            Some(p) => cur = p,
            None => return false,
        }
    }
}

/// Sub-threshold persistent-fault pressure of the root→`leaf` path: the
/// sum of persistent faults observed on every node a chain placed on
/// `leaf` would book stages on. The bias signal of fault-aware placement
/// (and, shard-aggregated, of the federation router).
fn path_fault_pressure(tree: &Tree, node_persistent: &[u32], leaf: NodeId) -> u64 {
    let mut pressure = 0u64;
    let mut cur = leaf;
    loop {
        pressure += u64::from(node_persistent.get(cur.0).copied().unwrap_or(0));
        match tree.parent(cur) {
            Some(p) => cur = p,
            None => return pressure,
        }
    }
}

/// Whether any stage of `chain` is served by `node` (checked against
/// the chain's precompiled run list — one comparison per failure
/// domain instead of one per stage).
fn chain_touches(chain: &ChunkChain, node: NodeId) -> bool {
    chain.runs.iter().any(|r| r.node == node)
}

/// The child-of-root subtree containing `node` (the node itself when it
/// hangs directly off the root, or is the root).
fn subtree_anchor(tree: &Tree, node: NodeId) -> NodeId {
    let mut cur = node;
    while let Some(p) = tree.parent(cur) {
        if p == tree.root() {
            return cur;
        }
        cur = p;
    }
    cur
}

/// Helper used by jobs that want "a chunk reservation on the staging
/// level": reserve `bytes` on the first level-1 node along the root's
/// first child (convenience for examples and tests).
pub fn staging_reservation(tree: &Tree, bytes: u64) -> Reservation {
    match tree.children(tree.root()).first() {
        Some(&c) => Reservation::new().with(c, bytes),
        None => Reservation::new().with(tree.root(), bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobWork;
    use northup::presets;
    use northup_hw::catalog;

    fn tree() -> Tree {
        presets::apu_two_level(catalog::ssd_hyperx_predator())
    }

    fn small_job(name: &str, tree: &Tree, frac_of_dram: f64, chunks: u32) -> JobSpec {
        let dram = tree.children(tree.root())[0];
        let budget = tree.node(dram).mem.capacity;
        let bytes = (budget as f64 * frac_of_dram) as u64;
        JobSpec::new(
            name,
            Reservation::new().with(dram, bytes),
            JobWork::new(chunks)
                .read(32 << 20)
                .xfer(32 << 20)
                .compute(SimDur::from_millis(2)),
        )
    }

    #[test]
    fn oversized_reservations_serialize() {
        let tree = tree();
        let dram = tree.children(tree.root())[0];
        let budget = tree.node(dram).mem.capacity;
        let mut sched = JobScheduler::new(tree.clone(), SchedulerConfig::default());
        let a = sched.submit(small_job("a", &tree, 0.6, 4));
        let b = sched.submit(small_job("b", &tree, 0.6, 4));
        let report = sched.run().unwrap();

        assert_eq!(report.job(a).state, JobState::Done);
        assert_eq!(report.job(b).state, JobState::Done);
        // b admitted only after a released.
        let a_release = report
            .admission_log
            .iter()
            .find(|e| e.job == a && e.kind == AdmissionEventKind::Released)
            .unwrap()
            .at;
        let b_admit = report.job(b).admitted_at.unwrap();
        assert!(b_admit >= a_release, "0.6+0.6 > 1.0 must serialize");
        // Committed bytes never exceed the budget at any sample.
        for s in &report.capacity_trace {
            assert!(s.committed <= budget, "sample {s:?} exceeds budget");
        }
        assert!(report.max_committed[dram.0] <= budget);
    }

    #[test]
    fn co_fitting_jobs_run_concurrently_and_beat_fifo() {
        let tree = tree();
        let make = |policy| {
            let mut s = JobScheduler::new(
                tree.clone(),
                SchedulerConfig {
                    policy,
                    ..SchedulerConfig::default()
                },
            );
            for i in 0..6 {
                s.submit(small_job(&format!("j{i}"), &tree, 0.3, 3));
            }
            s.run().unwrap()
        };
        let fair = make(AdmissionPolicy::WeightedFair);
        let fifo = make(AdmissionPolicy::Fifo);
        assert!(fair.all_terminal() && fifo.all_terminal());
        assert_eq!(fair.count(JobState::Done), 6);
        assert_eq!(fifo.count(JobState::Done), 6);
        assert!(
            fair.throughput > fifo.throughput,
            "concurrent admission ({:.2} jobs/s) must beat strict FIFO ({:.2} jobs/s)",
            fair.throughput,
            fifo.throughput
        );
    }

    #[test]
    fn backpressure_rejects_when_queue_is_full() {
        let tree = tree();
        let mut sched = JobScheduler::new(
            tree.clone(),
            SchedulerConfig {
                max_queue: 2,
                ..SchedulerConfig::default()
            },
        );
        // One hog admitted immediately, then many waiters at the same time.
        sched.submit(small_job("hog", &tree, 0.9, 8));
        for i in 0..5 {
            sched.submit(small_job(&format!("w{i}"), &tree, 0.9, 1));
        }
        let report = sched.run().unwrap();
        assert!(
            report.count(JobState::Rejected) >= 3,
            "{}",
            report.summary()
        );
        assert!(report.all_terminal());
    }

    #[test]
    fn infeasible_reservation_is_rejected_at_arrival() {
        let tree = tree();
        let dram = tree.children(tree.root())[0];
        let too_big = tree.node(dram).mem.capacity + 1;
        let mut sched = JobScheduler::new(tree.clone(), SchedulerConfig::default());
        let id = sched.submit(JobSpec::new(
            "whale",
            Reservation::new().with(dram, too_big),
            JobWork::new(1).read(1 << 20),
        ));
        let report = sched.run().unwrap();
        assert_eq!(report.job(id).state, JobState::Rejected);
    }

    #[test]
    fn cancellation_from_queue_and_at_chunk_boundary() {
        let tree = tree();
        let mut sched = JobScheduler::new(tree.clone(), SchedulerConfig::default());
        let hog = sched.submit(small_job("hog", &tree, 0.9, 16));
        let waiter = sched.submit(small_job("waiter", &tree, 0.9, 4));
        sched.cancel(waiter, SimTime::from_secs_f64(0.001));
        sched.cancel(hog, SimTime::from_secs_f64(0.05));
        let report = sched.run().unwrap();
        assert_eq!(report.job(waiter).state, JobState::Cancelled);
        assert_eq!(report.job(hog).state, JobState::Cancelled);
        assert!(report.all_terminal());
    }

    #[test]
    fn interactive_class_is_favored_but_batch_not_starved() {
        let tree = tree();
        let mut sched = JobScheduler::new(
            tree.clone(),
            SchedulerConfig {
                aging_limit: 4,
                ..SchedulerConfig::default()
            },
        );
        // A stream where everything co-fits two-at-a-time.
        for i in 0..4 {
            sched.submit(small_job(&format!("b{i}"), &tree, 0.45, 2).priority(Priority::Batch));
        }
        for i in 0..4 {
            sched.submit(
                small_job(&format!("i{i}"), &tree, 0.45, 2).priority(Priority::Interactive),
            );
        }
        let report = sched.run().unwrap();
        assert_eq!(report.count(JobState::Done), 8);
        // Every batch job finished — no starvation.
        for j in &report.jobs {
            assert_eq!(j.state, JobState::Done, "{} starved", j.name);
        }
    }

    #[test]
    fn same_trace_same_schedule() {
        let tree = tree();
        let build = || {
            let mut s = JobScheduler::new(tree.clone(), SchedulerConfig::default());
            for i in 0..8 {
                let p = Priority::ALL[i % 3];
                s.submit(
                    small_job(&format!("j{i}"), &tree, 0.25 + 0.05 * (i % 3) as f64, 2)
                        .priority(p)
                        .arrival(SimTime::from_secs_f64(0.0001 * i as f64)),
                );
            }
            s.run().unwrap()
        };
        let r1 = build();
        let r2 = build();
        assert_eq!(r1.admission_order, r2.admission_order);
        assert_eq!(r1.makespan, r2.makespan);
        assert_eq!(r1.capacity_trace, r2.capacity_trace);
        assert_eq!(r1.chunk_log, r2.chunk_log);
    }

    #[test]
    fn interactive_arrival_evicts_batch_at_a_chunk_boundary() {
        let tree = tree();
        let mut sched = JobScheduler::new(
            tree.clone(),
            SchedulerConfig {
                preempt: true,
                ..SchedulerConfig::default()
            },
        );
        let hog = sched.submit(small_job("batch-hog", &tree, 0.9, 16).priority(Priority::Batch));
        let vip = sched.submit(
            small_job("vip", &tree, 0.9, 2)
                .priority(Priority::Interactive)
                .arrival(SimTime::from_secs_f64(0.01)),
        );
        let report = sched.run().unwrap();
        // The interactive job ran *before* the batch hog drained...
        let vip_admit = report.job(vip).admitted_at.unwrap();
        let hog_finish = report.job(hog).finished_at.unwrap();
        assert!(
            vip_admit < hog_finish,
            "vip admitted at {vip_admit:?} must precede hog finish {hog_finish:?}"
        );
        assert_eq!(report.job(vip).state, JobState::Done);
        // ...and the evicted batch job still completed every chunk,
        // exactly once.
        assert_eq!(report.job(hog).state, JobState::Done);
        assert!(report.job(hog).preemptions >= 1);
        assert_eq!(report.job(hog).chunks_done, 16);
        let mut hog_chunks: Vec<u32> = report
            .chunk_log
            .iter()
            .filter(|c| c.job == hog)
            .map(|c| c.index)
            .collect();
        hog_chunks.sort_unstable();
        assert_eq!(hog_chunks, (0..16).collect::<Vec<_>>());
        assert!(!report.preemption_latencies.is_empty());
        assert!(report.all_terminal());
    }

    #[test]
    fn preemption_off_leaves_the_schedule_untouched() {
        let tree = tree();
        let build = |preempt| {
            let mut s = JobScheduler::new(
                tree.clone(),
                SchedulerConfig {
                    preempt,
                    ..SchedulerConfig::default()
                },
            );
            // Everything co-fits: preemption never triggers, so the flag
            // must not change the schedule.
            for i in 0..6 {
                s.submit(
                    small_job(&format!("j{i}"), &tree, 0.2, 3)
                        .priority(Priority::ALL[i % 3])
                        .arrival(SimTime::from_secs_f64(0.001 * i as f64)),
                );
            }
            s.run().unwrap()
        };
        let off = build(false);
        let on = build(true);
        assert_eq!(off.admission_order, on.admission_order);
        assert_eq!(off.makespan, on.makespan);
        assert_eq!(off.capacity_trace, on.capacity_trace);
        assert_eq!(on.total_preemptions(), 0);
    }

    #[test]
    fn budget_shrink_with_drain_tightens_new_admissions_only() {
        let tree = tree();
        let dram = tree.children(tree.root())[0];
        let mut sched = JobScheduler::new(tree.clone(), SchedulerConfig::default());
        let full = NodeBudgets::from_tree(&tree, 1.0);
        let a = sched.submit(small_job("a", &tree, 0.8, 8));
        // Arrives after the shrink: 0.8 of DRAM no longer feasible.
        let b = sched.submit(small_job("b", &tree, 0.8, 2).arrival(SimTime::from_secs_f64(0.2)));
        sched.resize_budgets(SimTime::from_secs_f64(0.01), full.scaled(0.5));
        let report = sched.run().unwrap();
        assert_eq!(report.job(a).state, JobState::Done, "drain lets a finish");
        assert_eq!(
            report.job(b).state,
            JobState::Rejected,
            "b infeasible under the shrunk budget"
        );
        assert_eq!(report.resize_log.len(), 1);
        assert!(report.resize_log[0].budgets[dram.0] < full.get(dram));
        assert!(report.all_terminal());
    }

    #[test]
    fn budget_shrink_with_preempt_evicts_until_it_fits() {
        let tree = tree();
        let dram = tree.children(tree.root())[0];
        let mut sched = JobScheduler::new(
            tree.clone(),
            SchedulerConfig {
                resize_drain: ResizeDrain::Preempt,
                ..SchedulerConfig::default()
            },
        );
        let full = NodeBudgets::from_tree(&tree, 1.0);
        let a = sched.submit(small_job("a", &tree, 0.4, 12));
        let shrink_at = SimTime::from_secs_f64(0.05);
        sched.resize_budgets(shrink_at, full.scaled(0.25));
        let report = sched.run().unwrap();
        // a (0.4 of DRAM) exceeds the 0.25 budget: evicted at a boundary,
        // then rejected on re-admission (its reservation is infeasible) —
        // unless it was already infeasible-queued at resize time.
        assert!(report.all_terminal());
        let a_out = report.job(a);
        assert!(a_out.preemptions >= 1, "must be evicted by the shrink");
        assert_eq!(a_out.state, JobState::Rejected);
        // After the eviction, committed bytes on DRAM fit the new budget.
        let new_budget = report.resize_log[0].budgets[dram.0];
        let after_shrink: Vec<_> = report
            .capacity_trace
            .iter()
            .filter(|s| s.node == dram && s.at > shrink_at)
            .collect();
        assert!(!after_shrink.is_empty());
        assert!(after_shrink.iter().all(|s| s.committed <= new_budget));
    }

    #[test]
    fn preemption_targets_victims_on_the_blocking_nodes() {
        // Two Batch victims on *different* nodes: `bystander` holds root
        // storage bytes, `blocker` holds the DRAM bytes the Interactive
        // arrival needs. The old first-lower-class choice marked in pure
        // (class, recency) order — `bystander`, admitted most recently,
        // was displaced first even though evicting it frees nothing the
        // arrival can use. Targeted preemption skips it.
        let tree = tree();
        let root = tree.root();
        let dram = tree.children(root)[0];
        let root_bytes = (tree.node(root).mem.capacity as f64 * 0.6) as u64;
        let dram_bytes = (tree.node(dram).mem.capacity as f64 * 0.6) as u64;
        let mut sched = JobScheduler::new(
            tree.clone(),
            SchedulerConfig {
                preempt: true,
                ..SchedulerConfig::default()
            },
        );
        // The right victim: chunky, on DRAM, admitted at t=0.
        let blocker = sched.submit(
            JobSpec::new(
                "blocker",
                Reservation::new().with(dram, dram_bytes),
                JobWork::new(8)
                    .read(32 << 20)
                    .xfer(32 << 20)
                    .compute(SimDur::from_millis(2)),
            )
            .priority(Priority::Batch),
        );
        // The wrong victim: compute-only quick chunks (no root-storage
        // contention) holding a *root* reservation, admitted after
        // `blocker` (so the recency-ordered scan visits it first) and
        // hitting chunk boundaries long before `blocker` does (so a
        // spurious mark would actually evict it — the unfiltered scan
        // measurably did, preemptions = 1).
        let bystander = sched.submit(
            JobSpec::new(
                "bystander",
                Reservation::new().with(root, root_bytes),
                JobWork::new(64).compute(SimDur::from_micros(100)),
            )
            .priority(Priority::Batch)
            .arrival(SimTime::from_secs_f64(0.001)),
        );
        let hi = sched.submit(
            JobSpec::new(
                "interactive",
                Reservation::new().with(dram, dram_bytes),
                JobWork::new(2)
                    .read(8 << 20)
                    .xfer(8 << 20)
                    .compute(SimDur::from_millis(1)),
            )
            .priority(Priority::Interactive)
            .arrival(SimTime::from_secs_f64(0.004)),
        );
        let report = sched.run().unwrap();
        assert!(report.all_terminal());
        assert_eq!(report.job(hi).state, JobState::Done);
        assert!(
            report.job(blocker).preemptions >= 1,
            "the DRAM holder must be displaced for the Interactive arrival"
        );
        assert_eq!(
            report.job(bystander).preemptions,
            0,
            "evicting the root-node job frees nothing the arrival needs"
        );
        assert_eq!(report.job(bystander).state, JobState::Done);
        assert_eq!(report.job(blocker).state, JobState::Done);
    }

    #[test]
    fn idle_slo_controller_never_perturbs_the_schedule() {
        // A controller whose targets are never breached observes but
        // must not act: the schedule is identical to a controller-free
        // run (the control tick only reads completions).
        let tree = tree();
        let build = |slo: Option<SloConfig>| {
            let mut s = JobScheduler::new(
                tree.clone(),
                SchedulerConfig {
                    slo,
                    ..SchedulerConfig::default()
                },
            );
            for i in 0..8 {
                s.submit(
                    small_job(&format!("j{i}"), &tree, 0.3, 3)
                        .priority(Priority::ALL[i % 3])
                        .arrival(SimTime::from_secs_f64(0.002 * i as f64)),
                );
            }
            s.run().unwrap()
        };
        let off = build(None);
        let on = build(Some(
            SloConfig::default().interactive_target(SimDur::from_secs_f64(3600.0)),
        ));
        assert_eq!(off.admission_order, on.admission_order);
        assert_eq!(off.makespan, on.makespan);
        assert_eq!(off.capacity_trace, on.capacity_trace);
        assert!(on.slo_log.iter().all(|s| s.tier == 0 && s.shed_now == 0));
        assert!(on.shed_log.is_empty());
        assert_eq!(on.capacity_needed_pct, 100);
        assert!(off.slo_log.is_empty(), "no controller, no samples");
    }

    /// A chunky job with no reservation (always admissible) — fault
    /// tests exercise placement/re-routing, not capacity.
    fn free_job(name: &str, chunks: u32) -> JobSpec {
        JobSpec::new(
            name,
            Reservation::new(),
            JobWork::new(chunks)
                .read(16 << 20)
                .xfer(16 << 20)
                .compute(SimDur::from_millis(1))
                .write(8 << 20),
        )
    }

    #[test]
    fn transient_faults_retry_and_recover_every_job() {
        let tree = tree();
        let build = || {
            let mut s = JobScheduler::new(
                tree.clone(),
                SchedulerConfig {
                    // ~4.6% per booking: plenty of faults, yet 4 bounded
                    // attempts make an exhaustion astronomically unlikely.
                    fault_plan: Some(FaultPlan::new(42).transient_rate(3000)),
                    ..SchedulerConfig::default()
                },
            );
            for i in 0..6 {
                s.submit(small_job(&format!("j{i}"), &tree, 0.3, 6));
            }
            s.run().unwrap()
        };
        let report = build();
        assert!(report.all_terminal());
        assert_eq!(report.count(JobState::Done), 6, "{}", report.summary());
        assert!(!report.fault_log.is_empty(), "the plan must inject");
        assert!(report.total_retries() > 0);
        assert!(report.total_backoff() > SimDur::ZERO);
        assert!(report.jobs_recovered() > 0);
        assert!(report.quarantine_log.is_empty(), "transient-only plan");
        // Bit-identical chaos: the whole report, field for field.
        let again = build();
        assert_eq!(format!("{report:?}"), format!("{again:?}"));
    }

    #[test]
    fn inactive_fault_plan_leaves_the_schedule_untouched() {
        let tree = tree();
        let build = |plan| {
            let mut s = JobScheduler::new(
                tree.clone(),
                SchedulerConfig {
                    fault_plan: plan,
                    ..SchedulerConfig::default()
                },
            );
            for i in 0..5 {
                s.submit(
                    small_job(&format!("j{i}"), &tree, 0.35, 3)
                        .arrival(SimTime::from_secs_f64(0.0002 * i as f64)),
                );
            }
            s.run().unwrap()
        };
        let off = build(None);
        let on = build(Some(FaultPlan::new(9))); // zero rates, no scripts
        assert_eq!(off.admission_order, on.admission_order);
        assert_eq!(off.makespan, on.makespan);
        assert_eq!(off.capacity_trace, on.capacity_trace);
        assert_eq!(off.chunk_log, on.chunk_log);
        assert!(on.fault_log.is_empty());
    }

    #[test]
    fn persistent_faults_quarantine_the_node_and_reroute_chains() {
        let tree = presets::asymmetric_fig2();
        let sick = NodeId(1); // the CPU/DRAM leaf of subtree 1
        let build = || {
            let mut s = JobScheduler::new(
                tree.clone(),
                SchedulerConfig {
                    fault_plan: Some(FaultPlan::new(7).persistent_rate(65536).on_nodes([sick])),
                    quarantine_after: 2,
                    ..SchedulerConfig::default()
                },
            );
            for i in 0..5 {
                s.submit(free_job(&format!("j{i}"), 3));
            }
            s.run().unwrap()
        };
        let report = build();
        assert!(report.all_terminal());
        assert_eq!(report.quarantined_nodes(), vec![sick]);
        assert_eq!(report.quarantine_log[0].faults, 2);
        // Every job completed on a surviving leaf — graceful degradation,
        // not mass failure.
        assert_eq!(report.count(JobState::Done), 5, "{}", report.summary());
        for j in &report.jobs {
            assert_ne!(j.leaf, Some(sick), "{} still on the fenced leaf", j.name);
        }
        // At least one chain was displaced and re-targeted by build_chain.
        assert!(report.jobs.iter().any(|j| j.fault.reroutes > 0));
        assert!(report.jobs_recovered() > 0);
        // Chunks still execute exactly once each across the re-routes.
        for j in &report.jobs {
            let mut idx: Vec<u32> = report
                .chunk_log
                .iter()
                .filter(|c| c.job == j.id)
                .map(|c| c.index)
                .collect();
            idx.sort_unstable();
            assert_eq!(idx, (0..j.chunks_done).collect::<Vec<_>>());
        }
        let again = build();
        assert_eq!(format!("{report:?}"), format!("{again:?}"));
    }

    #[test]
    fn quarantine_rejects_and_fails_jobs_bound_to_the_fenced_node() {
        let tree = presets::asymmetric_fig2();
        let sick = NodeId(1);
        let bytes = tree.node(sick).mem.capacity / 4;
        let mut s = JobScheduler::new(
            tree.clone(),
            SchedulerConfig {
                fault_plan: Some(FaultPlan::new(3).persistent_rate(65536).on_nodes([sick])),
                quarantine_after: 2,
                ..SchedulerConfig::default()
            },
        );
        // Holds capacity on the node that dies: displaced by its own
        // faults, then failed when the fence zeroes the budget.
        let doomed = s.submit(JobSpec::new(
            "doomed",
            Reservation::new().with(sick, bytes),
            JobWork::new(4).read(16 << 20).xfer(16 << 20),
        ));
        // Arrives long after the quarantine: rejected at arrival because
        // the surviving envelope cannot ever hold its reservation.
        let late = s.submit(
            JobSpec::new(
                "late",
                Reservation::new().with(sick, bytes),
                JobWork::new(1).read(1 << 20),
            )
            .arrival(SimTime::from_secs_f64(30.0)),
        );
        // A bystander with no stake in the sick node sails through.
        let fine = s.submit(free_job("fine", 2));
        let report = s.run().unwrap();
        assert!(report.all_terminal());
        assert_eq!(report.job(doomed).state, JobState::Failed);
        assert!(report.job(doomed).fault.persistent > 0);
        assert_eq!(report.job(late).state, JobState::Rejected);
        assert_eq!(report.job(fine).state, JobState::Done);
        assert_eq!(report.quarantined_nodes(), vec![sick]);
        // Fault accounting is visible in the one-line summary.
        assert!(report.summary().contains("quarantined"));
    }

    #[test]
    fn root_quarantine_fails_the_remaining_trace_gracefully() {
        let tree = tree();
        let root = tree.root();
        let mut s = JobScheduler::new(
            tree.clone(),
            SchedulerConfig {
                // The very first root booking (job 0's first Read) is a
                // persistent fault and the threshold is 1: the root — for
                // which no sibling exists — is fenced immediately.
                fault_plan: Some(FaultPlan::new(0).script(root, 0, FaultKind::Persistent)),
                quarantine_after: 1,
                ..SchedulerConfig::default()
            },
        );
        for i in 0..3 {
            s.submit(free_job(&format!("j{i}"), 2));
        }
        let report = s.run().unwrap();
        assert!(report.all_terminal(), "no stuck jobs even with a dead root");
        assert_eq!(report.quarantined_nodes(), vec![root]);
        assert_eq!(report.count(JobState::Done), 0);
        assert!(report.count(JobState::Failed) >= 1);
    }

    #[test]
    fn retry_exhaustion_escalates_to_the_persistent_path() {
        let tree = tree();
        let root = tree.root();
        // Script a transient fault at every early root ordinal: with a
        // no-retry policy the first fault escalates immediately.
        let mut plan = FaultPlan::new(5);
        for ord in 0..8 {
            plan = plan.script(root, ord, FaultKind::Transient);
        }
        let mut s = JobScheduler::new(
            tree.clone(),
            SchedulerConfig {
                fault_plan: Some(plan),
                retry: RetryPolicy::none(),
                quarantine_after: u32::MAX, // never fence: exercise max_job_faults
                max_job_faults: 2,
                ..SchedulerConfig::default()
            },
        );
        let id = s.submit(free_job("unlucky", 2));
        let report = s.run().unwrap();
        assert!(report.all_terminal());
        assert_eq!(report.job(id).state, JobState::Failed);
        assert_eq!(report.job(id).fault.retries, 0, "no-retry policy");
        assert!(report.job(id).fault.reroutes > 2, "displaced past the cap");
        // The admission log balances: every commit is matched by exactly
        // one release-like event (Released / Preempted / FaultEvicted).
        let count =
            |k: AdmissionEventKind| report.admission_log.iter().filter(|e| e.kind == k).count();
        assert_eq!(
            count(AdmissionEventKind::Admitted),
            count(AdmissionEventKind::Released)
                + count(AdmissionEventKind::Preempted)
                + count(AdmissionEventKind::FaultEvicted)
        );
    }

    #[test]
    fn tenant_quota_throttles_heavy_tenant() {
        let tree = tree();
        let dram = tree.children(tree.root())[0];
        // Two jobs that cannot co-fit: q2 normally starts the instant q1
        // releases. The post-paid charge at q1's release overdraws the
        // small bucket, so with a quota q2 must additionally wait for the
        // refill.
        let bytes = (tree.node(dram).mem.capacity as f64 * 0.6) as u64;
        let build = |quota| {
            let mut s = JobScheduler::new(
                tree.clone(),
                SchedulerConfig {
                    tenant_quota: quota,
                    ..SchedulerConfig::default()
                },
            );
            let t0 = TenantId(7);
            let mk = |name: &str| {
                JobSpec::new(
                    name,
                    Reservation::new().with(dram, bytes),
                    JobWork::new(4)
                        .read(32 << 20)
                        .xfer(32 << 20)
                        .compute(SimDur::from_millis(2)),
                )
                .tenant(t0)
            };
            s.submit(mk("q1"));
            s.submit(mk("q2"));
            s.run().unwrap()
        };
        let free = build(None);
        let quota = build(Some(TenantQuota::new(
            bytes as f64 * 0.01,
            bytes as f64 * 0.1,
        )));
        assert!(free.all_terminal() && quota.all_terminal());
        assert_eq!(quota.count(JobState::Done), 2);
        assert!(
            quota.makespan > free.makespan,
            "throttled tenant ({:?}) must finish later than unthrottled ({:?})",
            quota.makespan,
            free.makespan
        );
    }

    #[test]
    fn quota_fair_keeps_batch_flowing_past_a_throttled_head() {
        // A heavy interactive tenant overdraws its token bucket; its next
        // job sits at the head of the interactive class while the bucket
        // refills. Without `quota_fair` the throttled head banks aging
        // credit, trips the starvation guard, and the guard then stalls
        // *every* class until the quota wake. With `quota_fair` the
        // throttled head is recognised as quota-limited rather than
        // starved, so the batch tenant keeps admitting through the
        // refill window and finishes strictly earlier.
        let tree = tree();
        let dram = tree.children(tree.root())[0];
        let cap = tree.node(dram).mem.capacity as f64;
        let heavy = (cap * 0.6) as u64;
        let light = (cap * 0.25) as u64;
        let t_heavy = TenantId(7);
        let build = |quota_fair| {
            let mut s = JobScheduler::new(
                tree.clone(),
                SchedulerConfig {
                    aging_limit: 2,
                    // Tiny bucket, slow refill: the heavy job's post-paid
                    // release charge overdraws it for a long stretch of
                    // virtual time, while each light batch job's charge
                    // stays well inside its own tenant's bucket.
                    tenant_quota: Some(TenantQuota::new(cap * 0.01, cap * 0.05)),
                    quota_fair,
                    ..SchedulerConfig::default()
                },
            );
            let mk_heavy = |name: &str| {
                JobSpec::new(
                    name,
                    Reservation::new().with(dram, heavy),
                    JobWork::new(6)
                        .read(32 << 20)
                        .xfer(32 << 20)
                        .compute(SimDur::from_millis(2)),
                )
                .tenant(t_heavy)
                .priority(Priority::Interactive)
            };
            s.submit(mk_heavy("hog"));
            s.submit(mk_heavy("throttled").arrival(SimTime::from_secs_f64(0.0001)));
            for i in 0..5 {
                s.submit(
                    JobSpec::new(
                        format!("b{i}"),
                        Reservation::new().with(dram, light),
                        JobWork::new(1)
                            .read(16 << 20)
                            .xfer(16 << 20)
                            .compute(SimDur::from_millis(1)),
                    )
                    .priority(Priority::Batch)
                    .arrival(SimTime::from_secs_f64(0.0002)),
                );
            }
            s.run().unwrap()
        };
        let fair = build(true);
        let strict = build(false);
        assert!(fair.all_terminal() && strict.all_terminal());
        assert_eq!(fair.count(JobState::Done), 7, "{}", fair.summary());
        assert_eq!(strict.count(JobState::Done), 7, "{}", strict.summary());
        let last_batch = |r: &SchedReport| {
            r.jobs
                .iter()
                .filter(|j| j.priority == Priority::Batch)
                .filter_map(|j| j.finished_at)
                .max()
                .unwrap()
        };
        assert!(
            last_batch(&fair) < last_batch(&strict),
            "quota-fair batch tail {:?} must beat strict batch tail {:?}",
            last_batch(&fair),
            last_batch(&strict)
        );
    }

    #[test]
    fn probation_restores_a_fenced_node_after_a_fault_free_window() {
        let tree = presets::asymmetric_fig2();
        let sick = NodeId(1);
        let bytes = tree.node(sick).mem.capacity / 4;
        let build = || {
            let mut s = JobScheduler::new(
                tree.clone(),
                SchedulerConfig {
                    // Exactly two persistent faults (ordinals 0 and 1);
                    // every later consultation — the probes included —
                    // is clean.
                    fault_plan: Some(
                        FaultPlan::new(11)
                            .script(sick, 0, FaultKind::Persistent)
                            .script(sick, 1, FaultKind::Persistent),
                    ),
                    quarantine_after: 2,
                    probation: Some(Probation {
                        window: SimDur::from_millis(10),
                        probes: 4,
                        backoff: 2,
                        max_restores: 3,
                    }),
                    ..SchedulerConfig::default()
                },
            );
            for i in 0..4 {
                s.submit(free_job(&format!("j{i}"), 3));
            }
            // Arrives long after the restore and needs the once-fenced
            // node's capacity: only a genuinely restored budget admits it.
            s.submit(
                JobSpec::new(
                    "late",
                    Reservation::new().with(sick, bytes),
                    JobWork::new(1).read(1 << 20),
                )
                .arrival(SimTime::from_secs_f64(5.0)),
            );
            s.run().unwrap()
        };
        let report = build();
        assert!(report.all_terminal());
        assert_eq!(report.quarantined_nodes(), vec![sick]);
        assert_eq!(report.restored_nodes(), vec![sick]);
        let restore = report.restore_log[0];
        assert_eq!(restore.attempt, 1, "first probe was already clean");
        assert!(restore.budget > 0, "pre-fence budget came back");
        assert!(restore.at > report.quarantine_log[0].at);
        assert_eq!(report.count(JobState::Done), 5, "{}", report.summary());
        assert!(report.summary().contains("restored"));
        let again = build();
        assert_eq!(format!("{report:?}"), format!("{again:?}"));
    }

    #[test]
    fn probation_hysteresis_keeps_an_unstable_node_fenced_for_good() {
        let tree = presets::asymmetric_fig2();
        let sick = NodeId(1);
        let bytes = tree.node(sick).mem.capacity / 4;
        let mut s = JobScheduler::new(
            tree.clone(),
            SchedulerConfig {
                // Every consultation faults: each probe finds the node
                // still dirty, and after `max_restores` probes the fence
                // is permanent — the run still terminates.
                fault_plan: Some(FaultPlan::new(7).persistent_rate(65536).on_nodes([sick])),
                quarantine_after: 2,
                probation: Some(Probation {
                    window: SimDur::from_millis(10),
                    probes: 2,
                    backoff: 4,
                    max_restores: 3,
                }),
                ..SchedulerConfig::default()
            },
        );
        for i in 0..4 {
            s.submit(free_job(&format!("j{i}"), 3));
        }
        let late = s.submit(
            JobSpec::new(
                "late",
                Reservation::new().with(sick, bytes),
                JobWork::new(1).read(1 << 20),
            )
            .arrival(SimTime::from_secs_f64(30.0)),
        );
        let report = s.run().unwrap();
        assert!(report.all_terminal(), "bounded probes: no infinite probing");
        assert_eq!(report.quarantined_nodes(), vec![sick]);
        assert!(report.restored_nodes().is_empty(), "never flapped back in");
        assert_eq!(report.job(late).state, JobState::Rejected);
        assert!(report.events > 0);
    }

    #[test]
    fn fault_aware_placement_steers_off_a_sickening_leaf_before_quarantine() {
        let tree = presets::asymmetric_fig2();
        let sick = NodeId(1);
        let build = || {
            let mut s = JobScheduler::new(
                tree.clone(),
                SchedulerConfig {
                    // The node faults on every booking but the threshold is
                    // unreachable: only the placement bias can save the jobs.
                    fault_plan: Some(FaultPlan::new(3).persistent_rate(65536).on_nodes([sick])),
                    quarantine_after: u32::MAX,
                    fault_aware_placement: true,
                    ..SchedulerConfig::default()
                },
            );
            for i in 0..5 {
                s.submit(
                    free_job(&format!("j{i}"), 3).arrival(SimTime::from_secs_f64(0.02 * i as f64)),
                );
            }
            s.run().unwrap()
        };
        let report = build();
        assert!(report.all_terminal());
        assert!(report.quarantine_log.is_empty(), "threshold never tripped");
        // The bias signal only exists because something faulted first…
        assert!(report.fault_log.iter().any(|f| f.node == sick));
        assert!(*report.node_fault_pressure().get(&sick).unwrap_or(&0) >= 1);
        // …after which every chain drifted to (or re-routed onto) a
        // healthy leaf and completed — no job stuck on the sick one.
        assert_eq!(report.count(JobState::Done), 5, "{}", report.summary());
        for j in &report.jobs {
            assert_ne!(j.leaf, Some(sick), "{} ended on the sick leaf", j.name);
        }
        let again = build();
        assert_eq!(format!("{report:?}"), format!("{again:?}"));
    }

    #[test]
    fn resume_from_skips_checkpointed_chunks_exactly() {
        let tree = tree();
        let mut s = JobScheduler::new(tree.clone(), SchedulerConfig::default());
        // Migrated in with 2 of 4 chunks already done elsewhere: only
        // chunks 2 and 3 run here, with their original indices.
        let resumed = s.submit(
            JobSpec::new(
                "resumed",
                Reservation::new(),
                JobWork::new(4).read(8 << 20).xfer(8 << 20),
            )
            .resume_from(2),
        );
        // A stale checkpoint claiming more chunks than the work declares
        // is clamped: nothing runs, the job completes at admission.
        let ghost = s.submit(
            JobSpec::new("ghost", Reservation::new(), JobWork::new(3).read(8 << 20)).resume_from(9),
        );
        let report = s.run().unwrap();
        assert!(report.all_terminal());
        assert_eq!(report.job(resumed).state, JobState::Done);
        assert_eq!(report.job(resumed).chunks_done, 4);
        let mut idx: Vec<u32> = report
            .chunk_log
            .iter()
            .filter(|c| c.job == resumed)
            .map(|c| c.index)
            .collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![2, 3], "checkpointed chunks never re-run");
        assert_eq!(report.job(ghost).state, JobState::Done);
        assert_eq!(report.job(ghost).chunks_done, 3, "clamped to the work");
        assert!(!report.chunk_log.iter().any(|c| c.job == ghost));
        assert!(report.events > 0);
    }
}
