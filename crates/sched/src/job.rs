//! Job identity, priority classes, lifecycle states, and work shapes.

use crate::reserve::Reservation;
use northup_sim::{SimDur, SimTime};

/// Opaque job identifier, unique within one scheduler instance and
/// assigned in submission order (which makes it a deterministic
/// tie-breaker everywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job{}", self.0)
    }
}

/// Tenant identity for multi-tenant quota accounting. Jobs default to
/// tenant 0; the id is opaque to the scheduler beyond quota bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TenantId(pub u32);

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// Priority class for weighted fair admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Priority {
    /// Throughput-oriented background work.
    Batch,
    /// Default class.
    Normal,
    /// Latency-sensitive foreground work.
    Interactive,
}

impl Priority {
    /// Admission weight: an Interactive job gets 4 admission credits for
    /// every 1 a Batch job gets when both classes have waiters.
    pub fn weight(self) -> u64 {
        match self {
            Priority::Batch => 1,
            Priority::Normal => 2,
            Priority::Interactive => 4,
        }
    }

    /// All classes, highest priority first (the scheduler's scan order).
    pub const ALL: [Priority; 3] = [Priority::Interactive, Priority::Normal, Priority::Batch];
}

/// Latency-SLO deadline class: what the service has promised this job,
/// and therefore what the overload controller (`crate::slo`) may do to
/// it when the fabric saturates.
///
/// The class is orthogonal to [`Priority`] (which decides *admission
/// order*); the SLO class decides *sacrifice order* under overload.
/// Jobs that don't declare one inherit a default from their priority
/// via [`SloClass::for_priority`], which preserves the pre-SLO
/// behaviour: Interactive work is never shed, Batch work is first
/// against the wall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SloClass {
    /// Hard latency promise: never shed, never degraded. The
    /// controller's whole job is defending this class's p99.
    Guaranteed,
    /// Soft promise: may run degraded (brownout) under overload, shed
    /// only after every best-effort job is gone.
    Standard,
    /// No promise: first to be backpressured, shed, and degraded.
    BestEffort,
}

impl SloClass {
    /// The default SLO class a job of priority `p` inherits when its
    /// spec declares none.
    pub fn for_priority(p: Priority) -> SloClass {
        match p {
            Priority::Interactive => SloClass::Guaranteed,
            Priority::Normal => SloClass::Standard,
            Priority::Batch => SloClass::BestEffort,
        }
    }

    /// True when the shedding tier may evict or decline this class.
    pub fn sheddable(self) -> bool {
        !matches!(self, SloClass::Guaranteed)
    }

    /// True when the brownout tier may shrink this class's chunk work.
    pub fn degradable(self) -> bool {
        !matches!(self, SloClass::Guaranteed)
    }
}

/// Lifecycle: `Queued → Admitted → Running → {Done, Failed}`, with
/// `Rejected` (backpressure / infeasible reservation) and `Cancelled`
/// as alternative exits. With preemption enabled a `Running` job may be
/// evicted at a chunk boundary back to `Preempted` (queued again, no
/// capacity held, progress checkpointed) and later re-admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobState {
    /// Waiting in an admission queue; no capacity held.
    Queued,
    /// Reservation committed against the node budgets; not yet issuing.
    Admitted,
    /// Chunks in flight on the shared fabric.
    Running,
    /// Evicted at a chunk boundary; reservation released, waiting to
    /// resume from its checkpoint (completed chunks are never re-run).
    Preempted,
    /// Completed all chunks; reservation released.
    Done,
    /// Aborted by the runtime; reservation released.
    Failed,
    /// Never admitted: queue full or reservation infeasible.
    Rejected,
    /// Cancelled by the submitter (from queue or at a chunk boundary).
    Cancelled,
}

impl JobState {
    /// Terminal states never transition again and hold no reservation.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Rejected | JobState::Cancelled
        )
    }
}

/// The steady-state shape of a job: how many chunks it processes and what
/// each chunk costs on the shared fabric (root read → link staging → leaf
/// compute → optional writeback). This is the out-of-core pipeline of
/// `northup-apps` collapsed to its per-chunk resource demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobWork {
    /// Number of sequential chunks (≥ 0; zero-chunk jobs finish at admission).
    pub chunks: u32,
    /// Bytes read from root storage per chunk.
    pub read_bytes: u64,
    /// Bytes staged across each link on the root→leaf path per chunk.
    pub xfer_bytes: u64,
    /// Leaf compute time per chunk.
    pub compute: SimDur,
    /// Bytes written back (links + root storage) per chunk.
    pub write_bytes: u64,
}

impl JobWork {
    /// A job of `chunks` chunks with all per-chunk costs zero; chain the
    /// builder methods to fill them in.
    pub fn new(chunks: u32) -> Self {
        JobWork {
            chunks,
            read_bytes: 0,
            xfer_bytes: 0,
            compute: SimDur::ZERO,
            write_bytes: 0,
        }
    }

    /// Set bytes read from root storage per chunk.
    pub fn read(mut self, bytes: u64) -> Self {
        self.read_bytes = bytes;
        self
    }

    /// Set bytes staged over each path link per chunk.
    pub fn xfer(mut self, bytes: u64) -> Self {
        self.xfer_bytes = bytes;
        self
    }

    /// Set leaf compute time per chunk.
    pub fn compute(mut self, dur: SimDur) -> Self {
        self.compute = dur;
        self
    }

    /// Set writeback bytes per chunk.
    pub fn write(mut self, bytes: u64) -> Self {
        self.write_bytes = bytes;
        self
    }

    /// The per-chunk cost in the shared stage-chain IR, ready for
    /// `northup::fabric::build_chain`.
    pub fn chunk_work(&self) -> northup::fabric::ChunkWork {
        northup::fabric::ChunkWork::new()
            .read(self.read_bytes)
            .xfer(self.xfer_bytes)
            .compute(self.compute)
            .write(self.write_bytes)
    }
}

/// Everything the submitter declares about one job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Name for reports ("gemm-8g", "hotspot-t3").
    pub name: String,
    /// Owning tenant (for per-tenant quotas; defaults to tenant 0).
    pub tenant: TenantId,
    /// Admission class.
    pub priority: Priority,
    /// Virtual arrival time (trace replay position).
    pub arrival: SimTime,
    /// Per-node capacity this job needs held while admitted.
    pub reservation: Reservation,
    /// Per-chunk fabric demand.
    pub work: JobWork,
    /// Optional cancellation time (takes effect from the queue instantly,
    /// or at the next chunk boundary once running).
    pub cancel_at: Option<SimTime>,
    /// Declared SLO deadline class; `None` inherits
    /// [`SloClass::for_priority`] (the pre-SLO sacrifice order).
    pub slo: Option<SloClass>,
    /// Chunks already completed elsewhere before this submission — the
    /// migration hook. A job checkpointed on another scheduler (another
    /// shard of a federation) resumes here from chunk `start_chunk`:
    /// completed chunks are never re-run, chunk-log indices continue
    /// where the source left off, and a job whose checkpoint already
    /// covers every chunk finishes at admission. Clamped to
    /// `work.chunks`; zero (the default) is a fresh job.
    pub start_chunk: u32,
}

impl JobSpec {
    /// A `Normal`-priority job arriving at time zero; adjust fields or use
    /// the builder methods for the rest.
    pub fn new(name: impl Into<String>, reservation: Reservation, work: JobWork) -> Self {
        JobSpec {
            name: name.into(),
            tenant: TenantId::default(),
            priority: Priority::Normal,
            arrival: SimTime::ZERO,
            reservation,
            work,
            cancel_at: None,
            slo: None,
            start_chunk: 0,
        }
    }

    /// Declare an explicit SLO deadline class (overrides the
    /// priority-derived default).
    pub fn slo(mut self, class: SloClass) -> Self {
        self.slo = Some(class);
        self
    }

    /// The SLO class the overload controller enforces for this job:
    /// the declared class, or the priority-derived default.
    pub fn effective_slo(&self) -> SloClass {
        self.slo.unwrap_or(SloClass::for_priority(self.priority))
    }

    /// Set the admission class.
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Set the owning tenant.
    pub fn tenant(mut self, t: TenantId) -> Self {
        self.tenant = t;
        self
    }

    /// Set the virtual arrival time.
    pub fn arrival(mut self, at: SimTime) -> Self {
        self.arrival = at;
        self
    }

    /// Request cancellation at virtual time `at`.
    pub fn cancel_at(mut self, at: SimTime) -> Self {
        self.cancel_at = Some(at);
        self
    }

    /// Resume from a checkpoint taken elsewhere: chunks `0..chunks` are
    /// treated as already complete and are never re-run here (the
    /// cross-scheduler half of the migration protocol — within one
    /// scheduler, eviction keeps the checkpoint automatically).
    pub fn resume_from(mut self, chunks: u32) -> Self {
        self.start_chunk = chunks;
        self
    }
}
