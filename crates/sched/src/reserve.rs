//! Capacity reservations and per-node budgets.
//!
//! A job declares, per tree node, how many bytes of that memory level it
//! needs held for it while it runs (DRAM staging ring, device-memory
//! working set). The scheduler admits reservations against
//! [`NodeBudgets`] derived from the tree's `DeviceSpec` capacities, and
//! bridges an admitted reservation to a `northup::CapacityLease` so the
//! runtime's `alloc` enforces it.

use northup::lease::CapacityLease;
use northup::{NodeId, Tree};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-node byte reservation declared by a job.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Reservation {
    per_node: BTreeMap<NodeId, u64>,
}

impl Reservation {
    /// Empty reservation (no capacity held; always admissible).
    pub fn new() -> Self {
        Reservation::default()
    }

    /// Builder-style: reserve `bytes` on `node`.
    pub fn with(mut self, node: NodeId, bytes: u64) -> Self {
        self.set(node, bytes);
        self
    }

    /// Reserve `bytes` on `node` (replacing any previous amount; zero
    /// removes the entry).
    pub fn set(&mut self, node: NodeId, bytes: u64) {
        if bytes == 0 {
            self.per_node.remove(&node);
        } else {
            self.per_node.insert(node, bytes);
        }
    }

    /// Reserved bytes on `node` (zero when not reserved).
    pub fn get(&self, node: NodeId) -> u64 {
        self.per_node.get(&node).copied().unwrap_or(0)
    }

    /// All (node, bytes) entries in node-id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.per_node.iter().map(|(&n, &b)| (n, b))
    }

    /// True when nothing is reserved.
    pub fn is_empty(&self) -> bool {
        self.per_node.is_empty()
    }

    /// Sum of all reserved bytes (a crude job "size" for reports).
    pub fn total(&self) -> u64 {
        self.per_node.values().sum()
    }

    /// Bridge to the runtime: a capacity lease granting exactly this
    /// reservation, for `Runtime::install_lease`.
    pub fn to_lease(&self) -> Arc<CapacityLease> {
        CapacityLease::new(self.iter())
    }
}

impl FromIterator<(NodeId, u64)> for Reservation {
    fn from_iter<I: IntoIterator<Item = (NodeId, u64)>>(iter: I) -> Self {
        let mut r = Reservation::new();
        for (n, b) in iter {
            r.set(n, b);
        }
        r
    }
}

/// Admission budgets: the schedulable bytes of every tree node.
#[derive(Debug, Clone)]
pub struct NodeBudgets {
    budget: Vec<u64>,
}

impl NodeBudgets {
    /// Budgets from the tree's device capacities, scaled by `headroom`
    /// (e.g. 0.9 keeps 10% of every level for runtime slack). `headroom`
    /// is clamped to `[0, 1]`.
    pub fn from_tree(tree: &Tree, headroom: f64) -> Self {
        let headroom = headroom.clamp(0.0, 1.0);
        NodeBudgets {
            budget: tree
                .nodes()
                .map(|n| (n.mem.capacity as f64 * headroom) as u64)
                .collect(),
        }
    }

    /// Budgets from explicit per-node byte counts (index = `NodeId.0`),
    /// for live reconfiguration scenarios.
    pub fn from_vec(budget: Vec<u64>) -> Self {
        NodeBudgets { budget }
    }

    /// Schedulable bytes on `node` (zero for unknown nodes).
    pub fn get(&self, node: NodeId) -> u64 {
        self.budget.get(node.0).copied().unwrap_or(0)
    }

    /// Scale every node's budget by `factor` (clamped to `[0, 1]`), e.g.
    /// to model losing half of each memory level to a co-located tenant.
    pub fn scaled(&self, factor: f64) -> Self {
        let factor = factor.clamp(0.0, 1.0);
        NodeBudgets {
            budget: self
                .budget
                .iter()
                .map(|&b| (b as f64 * factor) as u64)
                .collect(),
        }
    }

    /// Set one node's budget to zero — quarantine: nothing more may be
    /// committed on the fenced node, and reservations touching it become
    /// infeasible. Unknown nodes are ignored.
    pub fn zero(&mut self, node: NodeId) {
        self.set(node, 0);
    }

    /// Set one node's budget to an explicit byte count — probation
    /// restore: a fenced node that survives its fault-free window gets
    /// its pre-fence budget back. Unknown nodes are ignored.
    pub fn set(&mut self, node: NodeId, bytes: u64) {
        if let Some(b) = self.budget.get_mut(node.0) {
            *b = bytes;
        }
    }

    /// The per-node budget vector (index = `NodeId.0`), for logs.
    pub fn snapshot(&self) -> Vec<u64> {
        self.budget.clone()
    }

    /// Whether a reservation can ever be admitted (each entry within the
    /// node's total budget).
    pub fn feasible(&self, r: &Reservation) -> bool {
        r.iter().all(|(n, b)| b <= self.get(n))
    }

    /// Whether `r` fits on top of the currently committed bytes
    /// (`committed` is a dense per-node vector indexed by `NodeId.0`,
    /// shorter-than-tree vectors read as zero).
    pub fn fits(&self, committed: &[u64], r: &Reservation) -> bool {
        r.iter().all(|(n, b)| {
            let used = committed.get(n.0).copied().unwrap_or(0);
            used.saturating_add(b) <= self.get(n)
        })
    }
}

/// A per-tenant token-bucket quota in **byte-seconds** of held capacity.
///
/// Each tenant's bucket starts full at `burst` and refills at `refill`
/// byte-seconds per virtual second, capped at `burst`. Admission requires
/// a non-negative balance; when a job releases its reservation the bucket
/// is charged `reservation.total() × residence_seconds` (post-paid, so a
/// single long job can overdraw once — the debt then throttles the
/// tenant's next admissions until the bucket refills past zero).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQuota {
    /// Bucket capacity and starting balance, in byte-seconds.
    pub burst: f64,
    /// Refill rate in byte-seconds per second (clamped to ≥ 1.0 so a
    /// throttled tenant always has a finite wake time).
    pub refill: f64,
}

impl TenantQuota {
    /// A quota with the given burst and refill rate.
    pub fn new(burst: f64, refill: f64) -> Self {
        TenantQuota {
            burst: burst.max(0.0),
            refill: refill.max(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use northup::presets;
    use northup_hw::catalog;

    #[test]
    fn reservation_accumulates_and_bridges_to_lease() {
        let r = Reservation::new()
            .with(NodeId(1), 100)
            .with(NodeId(2), 50)
            .with(NodeId(1), 80); // replaces
        assert_eq!(r.get(NodeId(1)), 80);
        assert_eq!(r.total(), 130);
        let lease = r.to_lease();
        assert_eq!(lease.granted(NodeId(1)), Some(80));
        assert_eq!(lease.granted(NodeId(0)), None);
    }

    #[test]
    fn budgets_follow_capacity_and_headroom() {
        let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
        let full = NodeBudgets::from_tree(&tree, 1.0);
        let half = NodeBudgets::from_tree(&tree, 0.5);
        for n in tree.nodes() {
            assert_eq!(full.get(n.id), n.mem.capacity);
            assert!(half.get(n.id) <= n.mem.capacity / 2 + 1);
        }
    }

    #[test]
    fn fits_accounts_for_committed_bytes() {
        let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
        let budgets = NodeBudgets::from_tree(&tree, 1.0);
        let dram = NodeId(1);
        let cap = budgets.get(dram);
        let r = Reservation::new().with(dram, cap / 2 + 1);
        assert!(budgets.feasible(&r));
        let mut committed = vec![0u64; tree.len()];
        assert!(budgets.fits(&committed, &r));
        committed[dram.0] = cap / 2 + 1;
        assert!(!budgets.fits(&committed, &r), "two halves-plus-one exceed");
    }
}
