//! Canonical schedule digest: one `u64` summarizing everything
//! deterministic a [`SchedReport`] contains.
//!
//! The engine-rewrite contract (DESIGN.md §12) is *bit-identical
//! schedules*: swapping the event queue or the job-state layout must not
//! move a single admission, chunk, fault, or capacity sample. Comparing
//! whole reports across processes is awkward, so this module folds the
//! report's full deterministic content — per-job outcomes, the admission
//! order and log, the capacity trace, peak commitments, the chunk log,
//! resizes, preemption latencies, and the three fault logs — into one
//! number with a splitmix64-style mixer. Two reports share a digest
//! exactly when their deterministic content is identical; the
//! `sched_engine` bench gate pins the digests the pre-rewrite engine
//! produced and fails on any drift.
//!
//! Derived floating-point aggregates (`throughput`, percentile
//! latencies, `rejection_rate`) are deliberately excluded: they are pure
//! functions of the folded content, and folding re-derived floats would
//! only add formatting hazards, not coverage.

use crate::job::JobState;
use crate::scheduler::{AdmissionEventKind, SchedReport};
use northup::fault::FaultKind;

/// Sentinel folded for `None` optionals (`Option<SimTime>`,
/// `Option<NodeId>`); real times are nanoseconds and real node ids are
/// tiny, so the sentinel cannot collide.
const NONE: u64 = u64::MAX;

/// Incremental splitmix64-style mixer. Order-sensitive: `mix(a); mix(b)`
/// differs from `mix(b); mix(a)`, which is exactly what an event-order
/// digest needs.
#[derive(Debug, Clone, Copy)]
struct Mixer(u64);

impl Mixer {
    fn new() -> Self {
        // Arbitrary non-zero seed so a leading zero contributes.
        Mixer(0x243F_6A88_85A3_08D3)
    }

    fn mix(&mut self, v: u64) {
        let mut z = self.0 ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }
}

/// Stable numeric code of a terminal (or not) job state.
fn state_code(s: JobState) -> u64 {
    match s {
        JobState::Queued => 0,
        JobState::Admitted => 1,
        JobState::Running => 2,
        JobState::Preempted => 3,
        JobState::Done => 4,
        JobState::Failed => 5,
        JobState::Rejected => 6,
        JobState::Cancelled => 7,
    }
}

/// Stable numeric code of an admission-log transition.
fn admission_code(k: AdmissionEventKind) -> u64 {
    match k {
        AdmissionEventKind::Admitted => 0,
        AdmissionEventKind::Released => 1,
        AdmissionEventKind::Preempted => 2,
        AdmissionEventKind::FaultEvicted => 3,
    }
}

/// Stable numeric code of a fault kind.
fn fault_code(k: FaultKind) -> u64 {
    match k {
        FaultKind::Transient => 0,
        FaultKind::Persistent => 1,
    }
}

/// Fold the report's full deterministic content into one `u64`.
///
/// Equal digests ⇔ equal schedules (up to 64-bit hash collisions): the
/// fold covers every per-job outcome field and every audit-trail series
/// in order, so any reordering, retiming, or recounting anywhere in the
/// run changes the result.
pub fn report_digest(r: &SchedReport) -> u64 {
    let mut m = Mixer::new();

    m.mix(r.jobs.len() as u64);
    for j in &r.jobs {
        m.mix(state_code(j.state));
        m.mix(j.arrival.0);
        m.mix(j.admitted_at.map_or(NONE, |t| t.0));
        m.mix(j.finished_at.map_or(NONE, |t| t.0));
        m.mix(j.leaf.map_or(NONE, |n| n.0 as u64));
        m.mix(u64::from(j.chunks_done));
        m.mix(u64::from(j.preemptions));
        m.mix(u64::from(j.fault.transient));
        m.mix(u64::from(j.fault.persistent));
        m.mix(u64::from(j.fault.retries));
        m.mix(j.fault.backoff.0);
        m.mix(u64::from(j.fault.reroutes));
        m.mix(j.spilled_bytes);
    }

    m.mix(r.makespan.0);
    m.mix(r.events);

    m.mix(r.admission_order.len() as u64);
    for id in &r.admission_order {
        m.mix(id.0);
    }

    m.mix(r.admission_log.len() as u64);
    for e in &r.admission_log {
        m.mix(e.at.0);
        m.mix(e.job.0);
        m.mix(admission_code(e.kind));
    }

    m.mix(r.capacity_trace.len() as u64);
    for s in &r.capacity_trace {
        m.mix(s.at.0);
        m.mix(s.node.0 as u64);
        m.mix(s.committed);
    }

    // Peak commitments: (node, peak) pairs in node order. Only touched
    // nodes appear (a touched node's peak is ≥ 1 byte, because empty
    // reservation entries never exist), so the folded stream is
    // independent of how the engine stores the accounting.
    for (n, peak) in r.max_committed_pairs() {
        m.mix(n.0 as u64);
        m.mix(peak);
    }

    m.mix(r.chunk_log.len() as u64);
    for c in &r.chunk_log {
        m.mix(c.at.0);
        m.mix(c.job.0);
        m.mix(u64::from(c.index));
    }

    m.mix(r.resize_log.len() as u64);
    for s in &r.resize_log {
        m.mix(s.at.0);
        for &b in &s.budgets {
            m.mix(b);
        }
    }

    m.mix(r.preemption_latencies.len() as u64);
    for d in &r.preemption_latencies {
        m.mix(d.0);
    }

    m.mix(r.fault_log.len() as u64);
    for f in &r.fault_log {
        m.mix(f.at.0);
        m.mix(f.node.0 as u64);
        m.mix(f.job.0);
        m.mix(fault_code(f.kind));
        m.mix(f.ordinal);
    }

    m.mix(r.quarantine_log.len() as u64);
    for q in &r.quarantine_log {
        m.mix(q.at.0);
        m.mix(q.node.0 as u64);
        m.mix(u64::from(q.faults));
    }

    m.mix(r.restore_log.len() as u64);
    for s in &r.restore_log {
        m.mix(s.at.0);
        m.mix(s.node.0 as u64);
        m.mix(u64::from(s.attempt));
        m.mix(s.budget);
    }

    m.mix(r.spill_log.len() as u64);
    for s in &r.spill_log {
        m.mix(s.at.0);
        m.mix(s.job.0);
        m.mix(s.bytes);
        m.mix(s.done.0);
    }

    m.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobSpec, JobWork};
    use crate::reserve::Reservation;
    use crate::scheduler::{JobScheduler, SchedulerConfig};
    use northup::presets;
    use northup_hw::catalog;
    use northup_sim::SimDur;

    fn run(n: usize) -> SchedReport {
        let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
        let mut s = JobScheduler::new(tree.clone(), SchedulerConfig::default());
        for i in 0..n {
            let dram = tree.children(tree.root())[0];
            let bytes = tree.node(dram).mem.capacity / 4;
            s.submit(JobSpec::new(
                format!("j{i}"),
                Reservation::new().with(dram, bytes),
                JobWork::new(2)
                    .read(16 << 20)
                    .xfer(16 << 20)
                    .compute(SimDur::from_millis(1)),
            ));
        }
        s.run().unwrap()
    }

    #[test]
    fn same_schedule_same_digest() {
        assert_eq!(report_digest(&run(6)), report_digest(&run(6)));
    }

    #[test]
    fn different_schedules_different_digests() {
        assert_ne!(report_digest(&run(5)), report_digest(&run(6)));
    }

    #[test]
    fn digest_is_sensitive_to_event_count() {
        let a = run(4);
        let mut b = a.clone();
        b.events += 1;
        assert_ne!(report_digest(&a), report_digest(&b));
    }
}
