//! # northup-sched — multi-tenant job scheduling for Northup machines
//!
//! The Northup runtime executes *one* out-of-core job well; this crate
//! arbitrates *many*. Jobs (GEMM, HotSpot, SpMV from `northup-apps`)
//! declare per-tree-level capacity reservations — DRAM staging bytes,
//! device-memory bytes — and the [`JobScheduler`] admits them against
//! per-node budgets derived from the tree's `DeviceSpec` capacities,
//! queueing or rejecting with backpressure when the machine is
//! oversubscribed.
//!
//! * [`reserve`] — [`Reservation`] (per-node bytes a job holds while
//!   admitted) and [`NodeBudgets`] (what the scheduler may commit);
//!   bridges to `northup::CapacityLease` so `Ctx::alloc` enforces the
//!   admitted amounts.
//! * [`job`] — [`JobSpec`]/[`JobWork`] (arrival, priority, per-chunk
//!   fabric demand) and the `Queued → Admitted → Running → Done` /
//!   `Failed` / `Rejected` / `Cancelled` lifecycle.
//! * [`fabric`] — [`SimFabric`], the *modeled* backend of the shared
//!   stage-chain IR (`northup::fabric`): virtual-time resources (root
//!   storage, links, leaf processors) all admitted jobs contend on,
//!   mirroring `northup::Runtime`'s single-job model.
//! * [`real`] — [`RealFabric`], the *real* backend: the same chunk
//!   chains driven through a `Runtime` in `ExecMode::Real` on the
//!   `northup-exec` work-stealing pool, with staging allocations metered
//!   by the job's `CapacityLease` and chunk-boundary cancellation via
//!   `northup_exec::CancelToken`.
//! * [`scheduler`] — [`JobScheduler`]: weighted fair admission across
//!   [`Priority`] classes with a starvation guard, strict-FIFO baseline,
//!   placement by work-queue depth (§V-E subtree-status checks),
//!   chunk-granular preemption with checkpointed resume, live
//!   [`NodeBudgets`] reconfiguration ([`JobScheduler::resize_budgets`]),
//!   per-tenant token-bucket quotas ([`TenantQuota`]), and a
//!   deterministic event-driven co-simulation producing a
//!   [`SchedReport`] (makespan, throughput, p50/p99 latency, rejection
//!   rate, preemption latencies, and per-node capacity audit trails).
//!
//! The scheduler is also **fault-tolerant** (DESIGN.md §10): a seeded
//! [`FaultPlan`] deterministically injects transient and persistent
//! stage faults, a [`RetryPolicy`] retries with exponential backoff
//! charged in virtual time, nodes that keep failing are quarantined
//! (budget zeroed, in-flight chains re-routed to surviving leaves from
//! their checkpoints, infeasible queued jobs rejected), and every
//! injection/retry/fence lands in the report's `fault_log`,
//! `quarantine_log`, and per-job [`FaultOutcome`]. The same plan drives
//! [`RealFabric::with_faults`] so real-thread chaos runs replay the
//! modeled fault pattern on actual storage backends.
//!
//! ## Example
//!
//! ```
//! use northup::presets;
//! use northup_hw::catalog;
//! use northup_sched::{
//!     staging_reservation, JobScheduler, JobSpec, JobState, JobWork, SchedulerConfig,
//! };
//! use northup_sim::SimDur;
//!
//! let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
//! let mut sched = JobScheduler::new(tree.clone(), SchedulerConfig::default());
//! let id = sched.submit(JobSpec::new(
//!     "gemm",
//!     staging_reservation(&tree, 512 << 20),
//!     JobWork::new(4).read(64 << 20).xfer(64 << 20).compute(SimDur::from_millis(5)),
//! ));
//! let report = sched.run().unwrap();
//! assert_eq!(report.job(id).state, JobState::Done);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod calendar;
pub mod digest;
pub mod error;
pub mod fabric;
pub mod job;
pub mod real;
pub mod reserve;
pub mod scheduler;
pub mod slo;

pub use calendar::CalendarQueue;
pub use digest::report_digest;
pub use error::SchedError;
pub use fabric::SimFabric;
pub use job::{JobId, JobSpec, JobState, JobWork, Priority, SloClass, TenantId};
pub use real::RealFabric;
pub use reserve::{NodeBudgets, Reservation, TenantQuota};
pub use scheduler::{
    staging_reservation, AdmissionEvent, AdmissionEventKind, AdmissionPolicy, CapacitySample,
    ChunkSample, FaultOutcome, FaultSample, JobOutcome, JobScheduler, Probation, QuarantineSample,
    ResizeDrain, ResizeSample, RestoreSample, SchedReport, SchedulerConfig, SpillSample,
};
pub use slo::{percentile_of, DegradeLevel, RejectReason, ShedOutcome, SloConfig, SloSample};
// Re-export the shared IR (and the failure-domain vocabulary) so
// scheduler users need not depend on `northup` directly.
pub use northup::fabric::{build_chain, Checkpoint, ChunkChain, ChunkWork, Fabric};
pub use northup::fault::{FaultKind, FaultPlan, RetryPolicy};
