//! Typed errors for scheduling runs.
//!
//! The event loop used to `expect()` its internal invariants (a running
//! job always has a chain, a tree always has a leaf). Those are still
//! invariants — but a violated invariant in a multi-tenant arbiter
//! should surface as a typed error the embedding service can report and
//! contain, not a panic that takes down every co-scheduled tenant.

use std::fmt;

use crate::job::JobId;
use northup::{FabricError, NorthupError};

/// Errors a [`JobScheduler::run`](crate::JobScheduler::run) can surface.
#[derive(Debug)]
pub enum SchedError {
    /// A job reached the stage/issue path without a compiled chain —
    /// admission and eviction bookkeeping disagree.
    MissingChain(JobId),
    /// The tree offers no leaf to place a job on.
    NoLeaf,
    /// The event heap produced a kind the dispatcher does not know.
    UnknownEvent(u8),
    /// A backend fabric failed while serving chunks.
    Fabric(FabricError),
    /// The core runtime rejected an operation.
    Runtime(NorthupError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::MissingChain(id) => {
                write!(f, "job {id:?} is running but holds no compiled chain")
            }
            SchedError::NoLeaf => write!(f, "tree has no leaf to place jobs on"),
            SchedError::UnknownEvent(k) => write!(f, "unknown scheduler event kind {k}"),
            SchedError::Fabric(e) => write!(f, "fabric failure during scheduling: {e}"),
            SchedError::Runtime(e) => write!(f, "runtime failure during scheduling: {e}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Fabric(e) => Some(e),
            SchedError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FabricError> for SchedError {
    fn from(e: FabricError) -> Self {
        SchedError::Fabric(e)
    }
}

impl From<NorthupError> for SchedError {
    fn from(e: NorthupError) -> Self {
        SchedError::Runtime(e)
    }
}
