//! Bucketed calendar queue: the event engine's priority queue for
//! million-job traces (DESIGN.md §12).
//!
//! A Brown-style calendar queue replaces the former
//! `BinaryHeap<Reverse<(SimTime, u8, u64, u64)>>`: a ring of
//! power-of-two-width *buckets* covers the near future, and everything
//! beyond the ring's horizon waits in a lazily-sorted *overflow* pile.
//! Pushes into the horizon are O(1) bucket appends; pops sort one small
//! bucket at a time instead of sifting a million-entry heap, so the hot
//! path touches a few contiguous cache lines rather than log₂(n)
//! scattered ones.
//!
//! **Ordering contract.** [`CalendarQueue::pop`] yields events in
//! ascending `(SimTime, kind, id, seq)` order — the exact tuple order the
//! heap produced, tie-broken by the same `(kind, id)` fields — so a run
//! driven by the calendar queue is *bit-identical* to a heap-driven run.
//! Identical tuples are interchangeable (the engine never distinguishes
//! two equal events), which is why the per-bucket `sort_unstable` is
//! safe. The property tests in `crates/sched/tests/calendar_props.rs`
//! drain random interleaved push/pop streams against a `BinaryHeap`
//! oracle and require equality element for element.
//!
//! **Packed storage.** Internally every event lives as a 16-byte
//! `(time_ns, kind·2⁵⁶ | id·2¹⁶ | seq)` pair rather than the 32-byte
//! public tuple, halving the bytes every bucket sort and overflow
//! memmove has to move. Packing is order-preserving — lexicographic
//! order on the pair equals tuple order on `(SimTime, kind, id, seq)` —
//! provided `id < 2⁴⁰` and `seq < 2¹⁶`, which the engine guarantees
//! (ids are dense job/node/tenant indices and `seq` is always 0 there)
//! and `push` enforces with debug assertions.
//!
//! **Monotonicity.** The simulation only schedules into the future, so
//! pushes at or after the current head time are the fast path. A push
//! *behind* the head (possible only for same-instant work during event
//! dispatch) is clamped into the active bucket, which the pop path keeps
//! sorted — exactly matching heap semantics, where a pop always returns
//! the minimum of whatever remains.
//!
//! Determinism: bucket geometry adapts only to event *times* already in
//! the queue (integer arithmetic, no clocks, no randomness), so one
//! event stream ⇒ one pop order, bit for bit.

use northup_sim::SimTime;

/// One engine event: `(time, kind, id, seq)`, compared lexicographically.
/// `id` must fit in 40 bits and `seq` in 16 (see the packed-storage note
/// in the module docs); both hold by construction for every engine event.
pub type Event = (SimTime, u8, u64, u64);

/// Internal 16-byte representation: `(time_ns, key)` with
/// `key = kind << 56 | id << 16 | seq`. Natural tuple order on the pair
/// equals [`Event`] tuple order within the documented field bounds.
type Packed = (u64, u64);

#[inline]
fn pack(ev: Event) -> Packed {
    let (t, kind, id, seq) = ev;
    debug_assert!(id < 1 << 40, "event id {id} overflows the 40-bit pack");
    debug_assert!(seq < 1 << 16, "event seq {seq} overflows the 16-bit pack");
    (t.0, (kind as u64) << 56 | id << 16 | seq)
}

#[inline]
fn unpack(p: Packed) -> Event {
    let (t, key) = p;
    (
        SimTime(t),
        (key >> 56) as u8,
        (key >> 16) & ((1 << 40) - 1),
        key & 0xFFFF,
    )
}

/// Number of ring buckets. Power of two so the slot math stays shifts;
/// 4096 buckets × a few events each keeps per-pop sorts tiny while the
/// horizon stays wide enough that steady-state traffic rarely lands in
/// overflow.
const RING_BUCKETS: usize = 4096;

/// Target mean events per bucket when the width is re-derived at an
/// overflow refill.
const TARGET_PER_BUCKET: u64 = 4;

/// A bucketed calendar queue over [`Event`]s, drop-in for a min-heap.
#[derive(Debug)]
pub struct CalendarQueue {
    /// The near-future ring; slot `(head + k) % RING_BUCKETS` covers
    /// virtual nanoseconds `[floor + k·width, floor + (k+1)·width)`.
    ring: Vec<Vec<Packed>>,
    /// Index of the active (earliest) bucket.
    head: usize,
    /// Start of the active bucket's window, in virtual nanoseconds.
    floor: u64,
    /// Bucket width in nanoseconds (always ≥ 1, always a power of two).
    width: u64,
    /// Whether the active bucket is currently sorted (descending, so
    /// pops take the minimum from the back in O(1)).
    active_sorted: bool,
    /// Events at or beyond the ring's horizon, sorted descending when
    /// `overflow_sorted` (the earliest events sit at the back).
    overflow: Vec<Packed>,
    overflow_sorted: bool,
    /// Earliest time waiting in `overflow` (`u64::MAX` when empty). The
    /// pop path compares it against the active window: as the ring
    /// slides forward its horizon can overtake overflow events, and
    /// those must be merged back in *before* the active bucket is
    /// trusted — otherwise a later ring event would pop first.
    overflow_min: u64,
    /// Events currently stored in ring buckets (not overflow).
    in_ring: usize,
    /// Total events stored.
    len: usize,
}

impl Default for CalendarQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CalendarQueue {
    /// An empty queue anchored at virtual time zero.
    pub fn new() -> Self {
        CalendarQueue {
            ring: (0..RING_BUCKETS).map(|_| Vec::new()).collect(),
            head: 0,
            floor: 0,
            width: 1 << 12, // 4.096 µs: re-derived at the first refill
            active_sorted: true,
            overflow: Vec::new(),
            overflow_sorted: true,
            overflow_min: u64::MAX,
            in_ring: 0,
            len: 0,
        }
    }

    /// Events stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// End of the ring's coverage: events at or past this go to overflow.
    fn horizon(&self) -> u64 {
        self.floor
            .saturating_add(self.width.saturating_mul(RING_BUCKETS as u64))
    }

    /// Insert an event. O(1) for future events within the horizon (the
    /// overwhelming case); a same-instant push behind the head clamps
    /// into the active bucket in sorted position.
    pub fn push(&mut self, ev: Event) {
        let p = pack(ev);
        self.len += 1;
        if p.0 < self.horizon() {
            self.place_in_ring(p);
        } else {
            // Past the horizon: pile it up, sort lazily at the refill.
            if self.overflow_sorted {
                self.overflow_sorted = match self.overflow.last() {
                    Some(last) => *last >= p,
                    None => true,
                };
            }
            self.overflow_min = self.overflow_min.min(p.0);
            self.overflow.push(p);
        }
    }

    /// Store an event that lies inside the current horizon in its ring
    /// bucket. Past-the-head times clamp into the active bucket, kept
    /// pop-ready when it is already sorted.
    fn place_in_ring(&mut self, p: Packed) {
        let t = p.0;
        if t < self.floor.saturating_add(self.width) {
            // Active bucket (including clamped past-time pushes): keep
            // it pop-ready if it is already sorted.
            if self.active_sorted && !self.ring[self.head].is_empty() {
                let bucket = &mut self.ring[self.head];
                // Descending order: find where `p` belongs so the back
                // stays the minimum.
                let pos = bucket.partition_point(|e| *e > p);
                bucket.insert(pos, p);
            } else {
                self.ring[self.head].push(p);
                self.active_sorted = self.ring[self.head].len() == 1;
            }
        } else {
            let slot = (self.head + ((t - self.floor) / self.width) as usize) % RING_BUCKETS;
            self.ring[slot].push(p);
        }
        self.in_ring += 1;
    }

    /// Remove and return the minimum event, or `None` when empty.
    pub fn pop(&mut self) -> Option<Event> {
        if self.len == 0 {
            return None;
        }
        self.advance_to_nonempty();
        let bucket = &mut self.ring[self.head];
        if !self.active_sorted {
            bucket.sort_unstable_by(|a, b| b.cmp(a));
            self.active_sorted = true;
        }
        let ev = bucket.pop();
        debug_assert!(ev.is_some(), "len accounting out of sync");
        self.len -= 1;
        self.in_ring -= 1;
        ev.map(unpack)
    }

    /// The minimum event without removing it, or `None` when empty.
    /// Advances/sorts internally (amortized against the matching pop).
    pub fn peek(&mut self) -> Option<Event> {
        if self.len == 0 {
            return None;
        }
        self.advance_to_nonempty();
        let bucket = &mut self.ring[self.head];
        if !self.active_sorted {
            bucket.sort_unstable_by(|a, b| b.cmp(a));
            self.active_sorted = true;
        }
        bucket.last().copied().map(unpack)
    }

    /// Advance `head` to the first non-empty bucket, refilling the ring
    /// from overflow when the ring runs dry. Callers guarantee
    /// `self.len > 0`.
    fn advance_to_nonempty(&mut self) {
        loop {
            if self.in_ring == 0 {
                self.refill_from_overflow();
            }
            // The window slides forward as `head` walks, so its horizon
            // can overtake events parked in overflow. Merge them back
            // before trusting the active bucket: without this, a ring
            // event later than the overflow minimum would pop first.
            if self.overflow_min < self.floor.saturating_add(self.width) {
                self.merge_overdue_overflow();
            }
            if !self.ring[self.head].is_empty() {
                return;
            }
            // The ring holds *something*, so this walk terminates within
            // one revolution; each step is a pointer compare.
            self.head = (self.head + 1) % RING_BUCKETS;
            self.floor = self.floor.saturating_add(self.width);
            self.active_sorted = false;
        }
    }

    /// Move every overflow event the horizon has overtaken into the
    /// ring. Called only when `overflow_min` has fallen inside the
    /// active bucket's window, which is rare (the window must slide a
    /// full horizon past a push), so the sort amortizes away.
    fn merge_overdue_overflow(&mut self) {
        if !self.overflow_sorted {
            self.overflow.sort_unstable_by(|a, b| b.cmp(a));
            self.overflow_sorted = true;
        }
        let horizon = self.horizon();
        while let Some(p) = self.overflow.last() {
            if p.0 >= horizon {
                break;
            }
            let p = match self.overflow.pop() {
                Some(p) => p,
                None => break,
            };
            self.place_in_ring(p);
        }
        self.overflow_min = match self.overflow.last() {
            Some(p) => p.0,
            None => u64::MAX,
        };
    }

    /// The ring ran dry: jump the window to the earliest overflow event,
    /// re-derive the bucket width from the observed event density, and
    /// move every overflow event inside the new horizon into the ring.
    fn refill_from_overflow(&mut self) {
        debug_assert!(!self.overflow.is_empty(), "refill with nothing queued");
        if !self.overflow_sorted {
            // Descending: earliest events at the back, popped first.
            self.overflow.sort_unstable_by(|a, b| b.cmp(a));
            self.overflow_sorted = true;
        }
        let earliest = match self.overflow.last() {
            Some(p) => p.0,
            None => return,
        };
        // Width from density: span of the next ~TARGET_PER_BUCKET-per-
        // bucket chunk of overflow, rounded up to a power of two. Pure
        // integer arithmetic over queued times — deterministic.
        let probe = (RING_BUCKETS as u64 * TARGET_PER_BUCKET) as usize;
        let latest_probe = if self.overflow.len() > probe {
            self.overflow[self.overflow.len() - probe].0
        } else {
            match self.overflow.first() {
                Some(p) => p.0,
                None => earliest,
            }
        };
        let span = latest_probe.saturating_sub(earliest).max(1);
        self.width = (span / RING_BUCKETS as u64).max(1).next_power_of_two();
        self.head = 0;
        self.floor = earliest;
        self.active_sorted = false;
        let horizon = self.horizon();
        while let Some(p) = self.overflow.last() {
            let t = p.0;
            if t >= horizon {
                break;
            }
            let slot = ((t - self.floor) / self.width) as usize % RING_BUCKETS;
            let p = match self.overflow.pop() {
                Some(p) => p,
                None => break,
            };
            self.ring[slot].push(p);
            self.in_ring += 1;
        }
        self.overflow_min = match self.overflow.last() {
            Some(p) => p.0,
            None => u64::MAX,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn ev(t: u64, kind: u8, id: u64) -> Event {
        (SimTime(t), kind, id, 0)
    }

    #[test]
    fn pack_preserves_tuple_order_and_roundtrips() {
        let samples = [
            ev(0, 0, 0),
            ev(0, 0, 1),
            ev(0, 6, (1 << 40) - 1),
            (SimTime(0), 6, (1 << 40) - 1, (1 << 16) - 1),
            ev(7, 3, 12),
            (SimTime(7), 3, 12, 9),
            ev(u64::MAX, 6, 42),
        ];
        for &a in &samples {
            assert_eq!(unpack(pack(a)), a, "roundtrip");
            for &b in &samples {
                assert_eq!(pack(a).cmp(&pack(b)), a.cmp(&b), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn drains_in_tuple_order() {
        let mut q = CalendarQueue::new();
        q.push(ev(500, 5, 2));
        q.push(ev(10, 0, 9));
        q.push(ev(10, 0, 1));
        q.push(ev(10, 1, 0));
        q.push(ev(1 << 40, 6, 3)); // far future: overflow
        q.push(ev(0, 5, 0));
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        assert_eq!(
            out,
            vec![
                ev(0, 5, 0),
                ev(10, 0, 1),
                ev(10, 0, 9),
                ev(10, 1, 0),
                ev(500, 5, 2),
                ev(1 << 40, 6, 3),
            ]
        );
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_pushes_match_heap_order() {
        // Deterministic pseudo-random stream (splitmix64), interleaving
        // pushes and pops, with pushes always at/after the current time —
        // the engine's monotone future-event property.
        let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
        let mut q = CalendarQueue::new();
        let mut state = 0x1234_5678_u64;
        let mut rnd = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut now = 0u64;
        for i in 0..50_000u64 {
            let r = rnd();
            if r % 3 != 0 || q.is_empty() {
                let dt = r % 100_000; // near future and far future mixed
                let dt = if r % 17 == 0 { dt * 1000 } else { dt };
                let e = (SimTime(now + dt), (r % 7) as u8, i, 0);
                heap.push(Reverse(e));
                q.push(e);
            } else {
                let a = heap.pop().map(|Reverse(e)| e);
                let b = q.pop();
                assert_eq!(a, b, "divergence mid-stream");
                if let Some(e) = a {
                    now = e.0 .0;
                }
            }
        }
        loop {
            let a = heap.pop().map(|Reverse(e)| e);
            let b = q.pop();
            assert_eq!(a, b, "divergence in the drain");
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn past_time_push_still_pops_first() {
        let mut q = CalendarQueue::new();
        q.push(ev(1000, 0, 1));
        assert_eq!(q.pop(), Some(ev(1000, 0, 1)));
        // Behind the head now — clamped, but still the minimum remaining.
        q.push(ev(2000, 0, 2));
        q.push(ev(500, 0, 3));
        assert_eq!(q.pop(), Some(ev(500, 0, 3)));
        assert_eq!(q.pop(), Some(ev(2000, 0, 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_overtaken_by_sliding_window_pops_in_order() {
        // Regression for a bug the property tests caught: an event
        // beyond the initial horizon waits in overflow; popping a deep
        // ring event slides the window forward so a *later* push lands
        // in the ring. The overflow event must still pop first.
        let mut q = CalendarQueue::new();
        q.push(ev(16_384_000, 0, 1)); // deep in the ring
        q.push(ev(17_000_000, 0, 2)); // beyond the initial horizon
        assert_eq!(q.pop(), Some(ev(16_384_000, 0, 1)));
        q.push(ev(20_000_000, 0, 3)); // inside the slid horizon
        assert_eq!(q.pop(), Some(ev(17_000_000, 0, 2)));
        assert_eq!(q.pop(), Some(ev(20_000_000, 0, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        for t in [7u64, 3, 900_000, 3, 12] {
            q.push(ev(t, 2, t));
        }
        while !q.is_empty() {
            let p = q.peek();
            assert_eq!(p, q.pop());
        }
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn million_distant_arrivals_drain_sorted() {
        // Mimics the seeded-arrival shape of a million-job trace: all
        // pushes up front, spanning hours of virtual time, then a full
        // drain through repeated overflow refills.
        let mut q = CalendarQueue::new();
        let mut state = 9u64;
        let n = 200_000u64;
        for i in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            q.push((SimTime(state % (1 << 42)), 5, i, 0));
        }
        assert_eq!(q.len(), n as usize);
        let mut prev: Option<Event> = None;
        let mut count = 0usize;
        while let Some(e) = q.pop() {
            if let Some(p) = prev {
                assert!(p <= e, "out of order: {p:?} then {e:?}");
            }
            prev = Some(e);
            count += 1;
        }
        assert_eq!(count, n as usize);
    }
}
