//! The SLO feedback controller: deterministic overload control in
//! escalating tiers (DESIGN.md §15).
//!
//! The scheduler samples per-class completion latency in **virtual
//! time** and, on every `EV_CONTROL` tick, compares the guaranteed
//! class's p99-so-far against its target. The ratio of the two — the
//! *pressure*, in integer percent — drives four escalating tiers:
//!
//! 1. **Backpressure** — a dynamic queue cap on best-effort arrivals,
//!    so Batch work is rejected-with-reason before it poisons the
//!    queues ([`RejectReason::QueueFull`]).
//! 2. **Shedding** — queued sheddable work is evicted newest-first and
//!    settled `Rejected` with [`RejectReason::Shed`] (or
//!    [`RejectReason::QuotaExceeded`] when its tenant's token bucket is
//!    already dry), logged as a typed [`ShedOutcome`].
//! 3. **Degradation** — brownout: subsequent non-guaranteed admissions
//!    compile a shrunken chain ([`DegradeLevel`] skips the writeback
//!    stage, then halves/quarters the staged bytes), trading result
//!    fidelity for queue drain.
//! 4. **Autoscaling** — a first-order capacity projection in the spirit
//!    of the paper's §V-D model: sustained breach scales the node
//!    budgets by `pressure` percent (when enabled) and, always, records
//!    the peak requirement as "capacity needed for this trace at this
//!    SLO" (`SchedReport::capacity_needed_pct`).
//!
//! Every decision is a pure function of virtual time and previously
//! sampled state: same trace + same [`SloConfig`] ⇒ bit-identical
//! control actions. With `SchedulerConfig::slo = None` (the default) no
//! control event is ever scheduled and the schedule is bit-identical to
//! the pre-SLO engine.

use crate::job::{JobId, Priority};
use northup_sim::{SimDur, SimTime};

/// Why an arrival never ran: the typed split of what used to be a bare
/// `Rejected` count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RejectReason {
    /// The queue (global limit or a controller-imposed class cap) was
    /// full at arrival.
    QueueFull,
    /// The overload controller evicted or declined the job to defend
    /// the guaranteed class's SLO.
    Shed,
    /// Shed while its tenant's quota bucket was already exhausted — the
    /// tenant was over its contracted rate when the controller had to
    /// choose victims.
    QuotaExceeded,
    /// The reservation can never fit the (current) node budgets.
    Infeasible,
}

impl RejectReason {
    /// Every variant, in a stable order for report iteration.
    pub const ALL: [RejectReason; 4] = [
        RejectReason::QueueFull,
        RejectReason::Shed,
        RejectReason::QuotaExceeded,
        RejectReason::Infeasible,
    ];

    /// Stable lower-case name for reports and JSON encodings.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue_full",
            RejectReason::Shed => "shed",
            RejectReason::QuotaExceeded => "quota_exceeded",
            RejectReason::Infeasible => "infeasible",
        }
    }
}

/// Brownout level the degradation tier applies to non-guaranteed
/// admissions. Each level shrinks the per-chunk work a little further;
/// level 0 is full fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum DegradeLevel {
    /// Full-fidelity chains.
    #[default]
    None,
    /// Skip the optional writeback stage (`write_bytes = 0`).
    SkipWriteback,
    /// Also stage half the bytes per chunk (half read, half transfer).
    HalfStaging,
    /// Also quarter the staged bytes — the deepest brownout.
    QuarterStaging,
}

impl DegradeLevel {
    /// All levels in escalation order.
    pub const ALL: [DegradeLevel; 4] = [
        DegradeLevel::None,
        DegradeLevel::SkipWriteback,
        DegradeLevel::HalfStaging,
        DegradeLevel::QuarterStaging,
    ];

    /// Numeric rank (0 = full fidelity, 3 = deepest brownout).
    pub fn rank(self) -> u8 {
        match self {
            DegradeLevel::None => 0,
            DegradeLevel::SkipWriteback => 1,
            DegradeLevel::HalfStaging => 2,
            DegradeLevel::QuarterStaging => 3,
        }
    }

    /// One level deeper (saturating).
    pub fn deeper(self) -> DegradeLevel {
        Self::ALL[(usize::from(self.rank()) + 1).min(3)]
    }

    /// One level shallower (saturating).
    pub fn shallower(self) -> DegradeLevel {
        Self::ALL[usize::from(self.rank().saturating_sub(1))]
    }

    /// The per-chunk work a job admitted at this level actually runs:
    /// monotone non-increasing in every field, so a degraded chain can
    /// never demand more of the fabric than the full-fidelity one (the
    /// budget-envelope argument the proptests check).
    pub fn apply(self, work: &crate::job::JobWork) -> crate::job::JobWork {
        let mut w = work.clone();
        match self {
            DegradeLevel::None => {}
            DegradeLevel::SkipWriteback => {
                w.write_bytes = 0;
            }
            DegradeLevel::HalfStaging => {
                w.write_bytes = 0;
                w.read_bytes /= 2;
                w.xfer_bytes /= 2;
            }
            DegradeLevel::QuarterStaging => {
                w.write_bytes = 0;
                w.read_bytes /= 4;
                w.xfer_bytes /= 4;
            }
        }
        w
    }
}

/// One job the shedding tier removed, and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShedOutcome {
    /// The shed job.
    pub job: JobId,
    /// Virtual time of the control tick that shed it.
    pub at: SimTime,
    /// The job's admission class.
    pub class: Priority,
    /// [`RejectReason::Shed`], or [`RejectReason::QuotaExceeded`] when
    /// the owner's bucket was dry.
    pub reason: RejectReason,
}

/// One control-tick observation: what the controller saw and what tier
/// it answered with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSample {
    /// Virtual time of the tick.
    pub at: SimTime,
    /// p99-so-far per class (Interactive, Normal, Batch), integer-index
    /// percentile over the sliding sample window; `SimDur::ZERO` with
    /// no completions yet.
    pub p99: [SimDur; 3],
    /// Guaranteed-class pressure in integer percent of target (100 =
    /// exactly at target).
    pub pressure_pct: u32,
    /// Escalation tier answered with (0 = nominal … 4 = autoscale).
    pub tier: u8,
    /// Brownout level in force after the tick.
    pub degrade: DegradeLevel,
    /// Dynamic best-effort queue cap in force (`u32::MAX` = uncapped).
    pub batch_cap: u32,
    /// Jobs shed on this tick.
    pub shed_now: u32,
    /// Applied capacity scale in percent of the original budgets.
    pub scale_pct: u32,
}

/// Controller knobs. All thresholds are integer percentages of the
/// guaranteed-class target so every comparison is exact integer math.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloConfig {
    /// Control-tick interval in virtual time.
    pub tick: SimDur,
    /// Per-class p99 latency targets (Interactive, Normal, Batch).
    /// Tiers trigger on the *Interactive* (guaranteed) target; the
    /// others are reported for headroom.
    pub targets: [SimDur; 3],
    /// Pressure (percent of target) at which backpressure engages.
    pub cap_pct: u32,
    /// Pressure at which shedding engages.
    pub shed_pct: u32,
    /// Pressure at which brownout deepens one level per tick.
    pub degrade_pct: u32,
    /// Pressure below which the controller relaxes one step per tick.
    pub relax_pct: u32,
    /// Best-effort queue cap applied while backpressure is engaged.
    pub batch_cap: u32,
    /// Most jobs the shedding tier removes per tick (bounds the work a
    /// single tick does).
    pub shed_per_tick: u32,
    /// Consecutive breached ticks before the autoscale tier reacts.
    pub breach_ticks: u32,
    /// Apply the projected capacity to the node budgets (when `false`
    /// the projection is still computed and reported, but budgets stay
    /// fixed — pure capacity planning).
    pub autoscale: bool,
    /// Autoscale ceiling in percent of the original budgets.
    pub max_scale_pct: u32,
    /// Completion-latency samples retained per class for the p99
    /// estimate (a sliding window; older samples age out).
    pub window: usize,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            tick: SimDur::from_millis(5),
            targets: [
                SimDur::from_millis(50),
                SimDur::from_millis(200),
                SimDur::from_millis(1_000),
            ],
            cap_pct: 85,
            shed_pct: 100,
            degrade_pct: 115,
            relax_pct: 70,
            batch_cap: 4,
            shed_per_tick: 8,
            breach_ticks: 4,
            autoscale: false,
            max_scale_pct: 400,
            window: 512,
        }
    }
}

impl SloConfig {
    /// Set the guaranteed-class (Interactive) p99 target.
    pub fn interactive_target(mut self, t: SimDur) -> Self {
        self.targets[0] = t;
        self
    }

    /// Enable budget autoscaling up to `max_scale_pct`.
    pub fn with_autoscale(mut self, ceiling_pct: u32) -> Self {
        self.autoscale = true;
        self.max_scale_pct = ceiling_pct.max(100);
        self
    }
}

/// What one control tick decided; the scheduler applies it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct SloDecision {
    /// Shed up to this many queued sheddable jobs now.
    pub shed: u32,
    /// Scale budgets to this percent of the originals (no-op when equal
    /// to the previously applied scale).
    pub scale_pct: u32,
}

/// Mutable controller state, owned by the run. Everything in here is a
/// deterministic function of the completion stream and the tick clock.
#[derive(Debug, Clone)]
pub(crate) struct SloState {
    /// The knobs.
    pub cfg: SloConfig,
    /// Sliding completion-latency windows per class, in arrival order.
    samples: [Vec<SimDur>; 3],
    /// Arrivals observed per class (for the report).
    pub arrivals: [u64; 3],
    /// Completions observed per class.
    pub completions: [u64; 3],
    /// Current escalation tier (0 = nominal).
    pub tier: u8,
    /// Brownout level in force.
    pub degrade: DegradeLevel,
    /// Dynamic best-effort queue cap (`None` = uncapped).
    pub batch_cap: Option<u32>,
    /// Consecutive ticks at or above `shed_pct`.
    breach_streak: u32,
    /// Capacity scale currently applied, percent of original budgets.
    pub scale_pct: u32,
    /// Peak projected capacity requirement — the "capacity needed for
    /// this trace at this SLO" answer (100 = the original budgets
    /// suffice).
    pub needed_pct: u32,
    /// Per-tick observations, in tick order.
    pub log: Vec<SloSample>,
    /// Every shed job, in shed order.
    pub sheds: Vec<ShedOutcome>,
}

impl SloState {
    /// Fresh controller state for one run.
    pub fn new(cfg: SloConfig) -> Self {
        SloState {
            cfg,
            samples: [Vec::new(), Vec::new(), Vec::new()],
            arrivals: [0; 3],
            completions: [0; 3],
            tier: 0,
            degrade: DegradeLevel::None,
            batch_cap: None,
            breach_streak: 0,
            scale_pct: 100,
            needed_pct: 100,
            log: Vec::new(),
            sheds: Vec::new(),
        }
    }

    /// Record one arrival in class `class` (0 = Interactive).
    pub fn on_arrival(&mut self, class: usize) {
        self.arrivals[class] += 1;
    }

    /// Record one completion latency in class `class`. The window keeps
    /// the most recent `cfg.window` samples: it grows to twice the
    /// window then drains the older half, so the p99 estimate always
    /// covers at least the last `window` completions.
    pub fn on_completion(&mut self, class: usize, latency: SimDur) {
        self.completions[class] += 1;
        let w = self.cfg.window.max(1);
        let buf = &mut self.samples[class];
        buf.push(latency);
        if buf.len() >= 2 * w {
            buf.drain(..w);
        }
    }

    /// p99-so-far of one class over the current window (integer-index
    /// percentile; `SimDur::ZERO` with no samples — edge cases shared
    /// with `fleet::report::percentile`).
    pub fn p99(&self, class: usize) -> SimDur {
        percentile_of(&self.samples[class], 99)
    }

    /// One control tick: observe, decide the tier, log the sample, and
    /// return what the scheduler must apply. `shed_backlog` is how many
    /// sheddable jobs are currently queued (bounds the shed quota).
    pub fn tick(&mut self, at: SimTime, shed_backlog: u32) -> SloDecision {
        let p99 = [self.p99(0), self.p99(1), self.p99(2)];
        let target = self.cfg.targets[0].0.max(1);
        // Ratio of like units (ns / ns) expressed in integer percent.
        let pressure_pct = u32::try_from(p99[0].0.saturating_mul(100) / target).unwrap_or(u32::MAX);

        let mut shed = 0u32;
        if pressure_pct >= self.cfg.degrade_pct {
            self.tier = self.tier.max(3);
            self.degrade = self.degrade.deeper();
            self.batch_cap = Some(self.cfg.batch_cap);
            shed = self.cfg.shed_per_tick.min(shed_backlog);
        } else if pressure_pct >= self.cfg.shed_pct {
            self.tier = self.tier.max(2);
            self.batch_cap = Some(self.cfg.batch_cap);
            shed = self.cfg.shed_per_tick.min(shed_backlog);
        } else if pressure_pct >= self.cfg.cap_pct {
            self.tier = self.tier.max(1);
            self.batch_cap = Some(self.cfg.batch_cap);
        } else if pressure_pct < self.cfg.relax_pct {
            // De-escalate one step per calm tick: brownout lifts first,
            // then the queue cap, then the tier resets.
            if self.degrade != DegradeLevel::None {
                self.degrade = self.degrade.shallower();
            } else if self.batch_cap.is_some() {
                self.batch_cap = None;
            } else {
                self.tier = 0;
            }
        }

        // Autoscale projection (§V-D spirit): a sustained breach means
        // the offered load needs `demand` percent of today's capacity to
        // meet the target. Latency overshoot alone under-reports once
        // shedding engages — the controller's own evictions are what
        // keep p99 near target — so the demand estimate is the max of
        // the latency pressure and the shed expansion factor
        // `arrivals / (arrivals - sheds)`: the capacity that would also
        // have served every job the controller turned away. First-order,
        // because modeled service time scales inversely with the
        // budget-limited parallelism.
        let total_arrivals: u64 = self.arrivals.iter().sum();
        let served = total_arrivals
            .saturating_sub(self.sheds.len() as u64)
            .max(1);
        // Ratio of like units (jobs / jobs) expressed in integer percent.
        let shed_expand =
            u32::try_from(total_arrivals.saturating_mul(100) / served).unwrap_or(u32::MAX);
        let demand_pct = pressure_pct.max(shed_expand);
        if pressure_pct >= self.cfg.shed_pct {
            self.breach_streak += 1;
        } else {
            self.breach_streak = 0;
        }
        if self.breach_streak >= self.cfg.breach_ticks.max(1) {
            let projected = (self.scale_pct.saturating_mul(demand_pct) / 100)
                .clamp(self.scale_pct, self.cfg.max_scale_pct);
            self.needed_pct = self.needed_pct.max(projected);
            if self.cfg.autoscale && projected > self.scale_pct {
                self.tier = 4;
                self.scale_pct = projected;
                self.breach_streak = 0;
            }
        }

        self.log.push(SloSample {
            at,
            p99,
            pressure_pct,
            tier: self.tier,
            degrade: self.degrade,
            batch_cap: self.batch_cap.unwrap_or(u32::MAX),
            shed_now: shed,
            scale_pct: self.scale_pct,
        });
        SloDecision {
            shed,
            scale_pct: self.scale_pct,
        }
    }

    /// Record one shed outcome (the scheduler calls this as it evicts).
    pub fn record_shed(&mut self, outcome: ShedOutcome) {
        self.sheds.push(outcome);
    }

    /// The brownout level a new admission of `slo` class compiles at.
    pub fn degrade_for(&self, slo: crate::job::SloClass) -> DegradeLevel {
        if slo.degradable() {
            self.degrade
        } else {
            DegradeLevel::None
        }
    }
}

/// Integer-index percentile of an unsorted latency slice: sorts a copy,
/// then indexes `(len - 1) * pct / 100` — the same convention as
/// `SchedReport::summary` and the fleet report. Empty ⇒ `SimDur::ZERO`;
/// a single sample is every percentile of itself.
pub fn percentile_of(samples: &[SimDur], pct: usize) -> SimDur {
    if samples.is_empty() {
        return SimDur::ZERO;
    }
    let mut sorted: Vec<SimDur> = samples.to_vec();
    sorted.sort_unstable();
    sorted[(sorted.len() - 1) * pct.min(100) / 100]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobWork, SloClass};

    #[test]
    fn percentile_edge_cases_never_panic_or_lie() {
        // Empty: zero, not a panic.
        assert_eq!(percentile_of(&[], 50), SimDur::ZERO);
        assert_eq!(percentile_of(&[], 99), SimDur::ZERO);
        // Single sample: every percentile is that sample.
        let one = [SimDur::from_millis(7)];
        for pct in [0, 50, 99, 100] {
            assert_eq!(percentile_of(&one, pct), SimDur::from_millis(7));
        }
        // All-equal: every percentile is the common value.
        let flat = [SimDur::from_millis(3); 17];
        for pct in [0, 50, 99, 100] {
            assert_eq!(percentile_of(&flat, pct), SimDur::from_millis(3));
        }
        // Unsorted input is handled (the sampler sorts a copy).
        let mixed = [
            SimDur::from_millis(9),
            SimDur::from_millis(1),
            SimDur::from_millis(5),
        ];
        assert_eq!(percentile_of(&mixed, 50), SimDur::from_millis(5));
        // Integer-index convention: p99 of 3 samples is index
        // (3-1)*99/100 = 1, the median — only p100 reaches the max.
        assert_eq!(percentile_of(&mixed, 99), SimDur::from_millis(5));
        assert_eq!(percentile_of(&mixed, 100), SimDur::from_millis(9));
        // Out-of-range pct clamps instead of indexing out of bounds.
        assert_eq!(percentile_of(&mixed, 250), SimDur::from_millis(9));
    }

    #[test]
    fn degrade_levels_are_monotone_non_increasing() {
        let w = JobWork::new(4)
            .read(32 << 20)
            .xfer(32 << 20)
            .compute(SimDur::from_millis(2))
            .write(8 << 20);
        let mut prev = w.clone();
        for level in DegradeLevel::ALL {
            let d = level.apply(&w);
            assert!(d.read_bytes <= prev.read_bytes, "{level:?}");
            assert!(d.xfer_bytes <= prev.xfer_bytes, "{level:?}");
            assert!(d.write_bytes <= prev.write_bytes, "{level:?}");
            assert_eq!(d.compute, w.compute, "compute is never skipped");
            assert_eq!(d.chunks, w.chunks, "chunk count is the contract");
            prev = d;
        }
        assert_eq!(DegradeLevel::QuarterStaging.apply(&w).write_bytes, 0);
        assert_eq!(DegradeLevel::None.apply(&w), w);
    }

    #[test]
    fn escalation_ladder_walks_up_and_relaxes_down() {
        let cfg = SloConfig {
            breach_ticks: 2,
            ..SloConfig::default()
        };
        let target = cfg.targets[0];
        let mut s = SloState::new(cfg);
        // Calm: plenty of fast completions, no reaction.
        for _ in 0..32 {
            s.on_completion(0, SimDur::from_millis(1));
        }
        let d = s.tick(SimTime::ZERO, 10);
        assert_eq!((s.tier, d.shed), (0, 0));
        assert!(s.batch_cap.is_none());
        // Breach: p99 lands well past target ⇒ cap, shed, then brownout.
        for _ in 0..64 {
            s.on_completion(0, SimDur(target.0 * 2));
        }
        let d = s.tick(SimTime::from_secs_f64(0.005), 10);
        assert!(s.tier >= 2, "tier {}", s.tier);
        assert!(d.shed > 0 && s.batch_cap.is_some());
        s.tick(SimTime::from_secs_f64(0.010), 10);
        assert!(s.degrade != DegradeLevel::None, "brownout engaged");
        // Sustained breach projects a capacity need > 100%.
        assert!(s.needed_pct > 100, "needed {}", s.needed_pct);
        assert_eq!(s.scale_pct, 100, "autoscale off: budgets untouched");
        // Recovery: fresh fast completions age the breach out of the
        // window and the controller steps back down.
        for _ in 0..2048 {
            s.on_completion(0, SimDur::from_millis(1));
        }
        let mut at = SimTime::from_secs_f64(0.015);
        for _ in 0..8 {
            s.tick(at, 0);
            at += SimDur::from_millis(5);
        }
        assert_eq!(s.degrade, DegradeLevel::None, "brownout lifted");
        assert!(s.batch_cap.is_none(), "cap lifted");
        assert_eq!(s.tier, 0, "tier reset");
    }

    #[test]
    fn autoscale_projection_applies_and_respects_the_ceiling() {
        let cfg = SloConfig {
            breach_ticks: 1,
            ..SloConfig::default().with_autoscale(250)
        };
        let target = cfg.targets[0];
        let mut s = SloState::new(cfg);
        for _ in 0..64 {
            s.on_completion(0, SimDur(target.0 * 4));
        }
        let mut at = SimTime::ZERO;
        for _ in 0..6 {
            s.tick(at, 0);
            at += SimDur::from_millis(5);
        }
        assert!(s.scale_pct > 100, "scaled: {}", s.scale_pct);
        assert!(s.scale_pct <= 250, "ceiling: {}", s.scale_pct);
        assert_eq!(s.needed_pct, s.scale_pct);
    }

    #[test]
    fn guaranteed_class_is_never_degraded() {
        let mut s = SloState::new(SloConfig::default());
        s.degrade = DegradeLevel::QuarterStaging;
        assert_eq!(s.degrade_for(SloClass::Guaranteed), DegradeLevel::None);
        assert_eq!(
            s.degrade_for(SloClass::BestEffort),
            DegradeLevel::QuarterStaging
        );
        assert_eq!(
            s.degrade_for(SloClass::Standard),
            DegradeLevel::QuarterStaging
        );
    }

    #[test]
    fn controller_decisions_are_pure_replay_functions() {
        let run = || {
            let mut s = SloState::new(SloConfig::default());
            let mut out = Vec::new();
            for i in 0..200u64 {
                s.on_completion((i % 3) as usize, SimDur::from_millis(1 + (i * 7) % 140));
                if i % 4 == 0 {
                    out.push(s.tick(SimTime::from_secs_f64(i as f64 * 1e-3), (i % 9) as u32));
                }
            }
            (out, s.log, s.needed_pct)
        };
        assert_eq!(run(), run(), "bit-identical double run");
    }
}
