//! The modeled backend of the stage-chain IR: shared virtual-time
//! resources for the co-simulation.
//!
//! One [`SimFabric`] holds a `northup-sim` [`Resource`] per tree node
//! (storage/memory bandwidth), per tree edge (link bandwidth + latency),
//! and per attached processor (compute). All admitted jobs serve their
//! chunk traffic on these *shared* resources, so SSD and PCIe contention
//! between concurrent jobs shows up directly in their makespans — the
//! same construction `northup::Runtime` uses for a single job, lifted to
//! many.
//!
//! The *what* of a chunk — its ordered, costed stages — is the
//! [`ChunkChain`] IR compiled by [`northup::fabric::build_chain`]; this
//! module only decides *when* each stage is served. A chunk is served
//! **stage by stage**: the scheduler books one [`ChainStage`] at its
//! actual virtual ready time and only then learns when the next stage
//! may start. Booking the whole chain at issue time would let an early
//! chunk reserve the root storage far into the future (the [`Resource`]
//! list scheduler never backfills idle gaps), which silently serializes
//! concurrent jobs.

use northup::fabric::{ChainStage, ChunkChain, Fabric, FabricError, Stage};
use northup::Tree;
use northup_sim::{Resource, SimTime};

/// Shared contention model: one resource per node, edge, and processor.
#[derive(Debug)]
pub struct SimFabric {
    /// Indexed by `NodeId.0`: the node's storage/memory bandwidth.
    node_res: Vec<Resource>,
    /// Indexed by `NodeId.0`: the link from this node up to its parent.
    link_res: Vec<Option<Resource>>,
    /// Indexed by `NodeId.0`: the node's first attached processor.
    comp_res: Vec<Option<Resource>>,
}

impl SimFabric {
    /// Build the fabric mirroring the runtime's resource construction:
    /// node bandwidth from `DeviceSpec.read_bw`, link bandwidth/latency
    /// from `LinkSpec`, one compute resource per node with processors.
    pub fn new(tree: &Tree) -> Self {
        let mut node_res = Vec::with_capacity(tree.len());
        let mut link_res = Vec::with_capacity(tree.len());
        let mut comp_res = Vec::with_capacity(tree.len());
        for n in tree.nodes() {
            node_res.push(Resource::new(
                &n.mem.name,
                n.mem.read_bw,
                n.mem.read_latency,
            ));
            link_res.push(
                n.link
                    .as_ref()
                    .map(|l| Resource::new(&l.name, l.bandwidth, l.latency)),
            );
            comp_res.push(n.procs.first().map(|p| Resource::new_compute(&p.name)));
        }
        SimFabric {
            node_res,
            link_res,
            comp_res,
        }
    }

    /// Book one stage starting no earlier than `ready`; returns when it
    /// completes (FIFO-queued behind whatever the resource already
    /// serves).
    pub fn serve(&mut self, stage: &ChainStage, ready: SimTime) -> SimTime {
        match stage.stage {
            Stage::Read => self.node_res[0].serve_bytes(ready, stage.cost.bytes).end,
            Stage::LinkDown(hop) => match self.link_res[hop.0].as_mut() {
                Some(link) => link.serve_bytes(ready, stage.cost.bytes).end,
                None => ready,
            },
            Stage::Compute(leaf) => match self.comp_res[leaf.0].as_mut() {
                Some(comp) => comp.serve_for(ready, stage.cost.compute).end,
                None => ready + stage.cost.compute,
            },
            Stage::LinkUp(hop) => match self.link_res[hop.0].as_mut() {
                Some(link) => link.serve_bytes(ready, stage.cost.bytes).end,
                None => ready,
            },
            Stage::WriteBack => self.node_res[0].serve_bytes(ready, stage.cost.bytes).end,
        }
    }

    /// Book a checkpoint-spill writeback of `bytes` on the root store
    /// starting no earlier than `ready`; returns when the store has
    /// absorbed it. Used by [`SchedulerConfig::charge_spill`] to make a
    /// victim's in-flight staging ring cost virtual time at eviction —
    /// the writeback FIFO-queues on the same resource every Read and
    /// WriteBack stage contends on, so spills delay later bookings.
    ///
    /// [`SchedulerConfig::charge_spill`]: crate::scheduler::SchedulerConfig::charge_spill
    pub fn spill_writeback(&mut self, ready: SimTime, bytes: u64) -> SimTime {
        self.node_res[0].serve_bytes(ready, bytes).end
    }

    /// Busy horizon of the root storage resource (diagnostics).
    pub fn root_busy_until(&self) -> SimTime {
        self.node_res[0].busy_until()
    }
}

impl Fabric for SimFabric {
    /// Serve a whole chunk for a single tenant, stage after stage. Only
    /// meaningful when no other job interleaves (tests, FIFO baselines);
    /// the scheduler proper books stage by stage through
    /// [`serve`](SimFabric::serve).
    fn run_chunk(
        &mut self,
        chain: &ChunkChain,
        _idx: u32,
        ready: SimTime,
    ) -> std::result::Result<SimTime, FabricError> {
        let mut t = ready;
        for stage in &chain.stages {
            t = self.serve(stage, t);
        }
        Ok(t)
    }

    fn reset(&mut self) -> std::result::Result<(), FabricError> {
        for r in &mut self.node_res {
            r.reset();
        }
        for r in self.link_res.iter_mut().flatten() {
            r.reset();
        }
        for r in self.comp_res.iter_mut().flatten() {
            r.reset();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobWork;
    use northup::fabric::build_chain;
    use northup::{presets, NodeId};
    use northup_hw::catalog;
    use northup_sim::SimDur;

    fn leaf_of(tree: &Tree) -> NodeId {
        tree.leaves().next().unwrap().id
    }

    #[test]
    fn chunks_on_one_leaf_serialize_on_shared_resources() {
        let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
        let mut fab = SimFabric::new(&tree);
        let leaf = leaf_of(&tree);
        let work = JobWork::new(1)
            .read(64 << 20)
            .xfer(64 << 20)
            .compute(SimDur::from_millis(3));
        let chain = build_chain(&tree, leaf, work.chunk_work(), 1);
        let t1 = fab.run_chunk(&chain, 0, SimTime::ZERO).unwrap();
        let t2 = fab.run_chunk(&chain, 0, SimTime::ZERO).unwrap();
        assert!(t1 > SimTime::ZERO);
        assert!(
            t2 > t1,
            "second chunk must queue behind the first on shared SSD/link"
        );
    }

    #[test]
    fn chain_ir_covers_the_path_and_skips_zero_cost() {
        let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
        let leaf = leaf_of(&tree);
        let full = build_chain(
            &tree,
            leaf,
            JobWork::new(1)
                .read(1)
                .xfer(1)
                .compute(SimDur::from_micros(1))
                .write(1)
                .chunk_work(),
            1,
        );
        assert_eq!(full.stages.first().map(|s| s.stage), Some(Stage::Read));
        assert_eq!(full.stages.last().map(|s| s.stage), Some(Stage::WriteBack));
        assert!(full.stages.iter().any(|s| s.stage == Stage::Compute(leaf)));
        let read_only = build_chain(&tree, leaf, JobWork::new(1).read(1).chunk_work(), 1);
        assert_eq!(read_only.stages.len(), 1);
        assert!(build_chain(&tree, leaf, JobWork::new(1).chunk_work(), 1).is_empty());
    }

    #[test]
    fn reset_restores_idle_fabric() {
        let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
        let mut fab = SimFabric::new(&tree);
        let leaf = leaf_of(&tree);
        let chain = build_chain(
            &tree,
            leaf,
            JobWork::new(1).read(1 << 20).xfer(1 << 20).chunk_work(),
            1,
        );
        let t1 = fab.run_chunk(&chain, 0, SimTime::ZERO).unwrap();
        fab.reset().unwrap();
        let t2 = fab.run_chunk(&chain, 0, SimTime::ZERO).unwrap();
        assert_eq!(t1, t2, "deterministic replay after reset");
    }
}
