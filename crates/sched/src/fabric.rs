//! Shared virtual-time resource fabric for the co-simulation.
//!
//! One [`SimFabric`] holds a `northup-sim` [`Resource`] per tree node
//! (storage/memory bandwidth), per tree edge (link bandwidth + latency),
//! and per attached processor (compute). All admitted jobs serve their
//! chunk traffic on these *shared* resources, so SSD and PCIe contention
//! between concurrent jobs shows up directly in their makespans — the
//! same construction `northup::Runtime` uses for a single job, lifted to
//! many.
//!
//! A chunk is served **stage by stage**: the scheduler books one
//! [`Stage`] at its actual virtual ready time and only then learns when
//! the next stage may start. Booking the whole chain at issue time would
//! let an early chunk reserve the root storage far into the future
//! (the `Resource` list scheduler never backfills idle gaps), which
//! silently serializes concurrent jobs.

use crate::job::JobWork;
use northup::{NodeId, Tree};
use northup_sim::{Resource, SimTime};

/// One bookable step of a chunk's root→leaf→root journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Read `read_bytes` from the root storage.
    RootRead,
    /// Stage `xfer_bytes` down the link into the given node.
    LinkDown(NodeId),
    /// Run the leaf kernel for `compute`.
    Compute(NodeId),
    /// Write `write_bytes` up the link out of the given node.
    LinkUp(NodeId),
    /// Write `write_bytes` back to the root storage.
    RootWrite,
}

/// Shared contention model: one resource per node, edge, and processor.
#[derive(Debug)]
pub struct SimFabric {
    /// Indexed by `NodeId.0`: the node's storage/memory bandwidth.
    node_res: Vec<Resource>,
    /// Indexed by `NodeId.0`: the link from this node up to its parent.
    link_res: Vec<Option<Resource>>,
    /// Indexed by `NodeId.0`: the node's first attached processor.
    comp_res: Vec<Option<Resource>>,
    /// Indexed by `NodeId.0`: path from the root down to this node,
    /// root excluded (so each entry names the link it is reached over).
    paths: Vec<Vec<NodeId>>,
}

impl SimFabric {
    /// Build the fabric mirroring the runtime's resource construction:
    /// node bandwidth from `DeviceSpec.read_bw`, link bandwidth/latency
    /// from `LinkSpec`, one compute resource per node with processors.
    pub fn new(tree: &Tree) -> Self {
        let mut node_res = Vec::with_capacity(tree.len());
        let mut link_res = Vec::with_capacity(tree.len());
        let mut comp_res = Vec::with_capacity(tree.len());
        let mut paths = Vec::with_capacity(tree.len());
        for n in tree.nodes() {
            node_res.push(Resource::new(
                &n.mem.name,
                n.mem.read_bw,
                n.mem.read_latency,
            ));
            link_res.push(
                n.link
                    .as_ref()
                    .map(|l| Resource::new(&l.name, l.bandwidth, l.latency)),
            );
            comp_res.push(n.procs.first().map(|p| Resource::new_compute(&p.name)));
            // Path root -> n, excluding the root itself.
            let mut path = Vec::new();
            let mut cur = n.id;
            while let Some(p) = tree.parent(cur) {
                path.push(cur);
                cur = p;
            }
            path.reverse();
            paths.push(path);
        }
        SimFabric {
            node_res,
            link_res,
            comp_res,
            paths,
        }
    }

    /// The stages one chunk of `work` passes through when placed on
    /// `leaf`, with zero-cost stages skipped. Empty when the work shape
    /// is all-zero.
    pub fn plan_stages(&self, leaf: NodeId, work: &JobWork) -> Vec<Stage> {
        let mut stages = Vec::new();
        if work.read_bytes > 0 {
            stages.push(Stage::RootRead);
        }
        if work.xfer_bytes > 0 {
            for &hop in &self.paths[leaf.0] {
                if self.link_res[hop.0].is_some() {
                    stages.push(Stage::LinkDown(hop));
                }
            }
        }
        if work.compute > northup_sim::SimDur::ZERO {
            stages.push(Stage::Compute(leaf));
        }
        if work.write_bytes > 0 {
            for &hop in self.paths[leaf.0].iter().rev() {
                if self.link_res[hop.0].is_some() {
                    stages.push(Stage::LinkUp(hop));
                }
            }
            stages.push(Stage::RootWrite);
        }
        stages
    }

    /// Book one stage starting no earlier than `ready`; returns when it
    /// completes (FIFO-queued behind whatever the resource already
    /// serves).
    pub fn serve(&mut self, stage: Stage, ready: SimTime, work: &JobWork) -> SimTime {
        match stage {
            Stage::RootRead => self.node_res[0].serve_bytes(ready, work.read_bytes).end,
            Stage::LinkDown(hop) => match self.link_res[hop.0].as_mut() {
                Some(link) => link.serve_bytes(ready, work.xfer_bytes).end,
                None => ready,
            },
            Stage::Compute(leaf) => match self.comp_res[leaf.0].as_mut() {
                Some(comp) => comp.serve_for(ready, work.compute).end,
                None => ready + work.compute,
            },
            Stage::LinkUp(hop) => match self.link_res[hop.0].as_mut() {
                Some(link) => link.serve_bytes(ready, work.write_bytes).end,
                None => ready,
            },
            Stage::RootWrite => self.node_res[0].serve_bytes(ready, work.write_bytes).end,
        }
    }

    /// Serve a whole chunk for a single tenant, stage after stage. Only
    /// meaningful when no other job interleaves (tests, FIFO baselines);
    /// the scheduler proper books stage by stage through [`serve`].
    ///
    /// [`serve`]: Self::serve
    pub fn run_chunk(&mut self, leaf: NodeId, ready: SimTime, work: &JobWork) -> SimTime {
        let mut t = ready;
        for stage in self.plan_stages(leaf, work) {
            t = self.serve(stage, t, work);
        }
        t
    }

    /// Busy horizon of the root storage resource (diagnostics).
    pub fn root_busy_until(&self) -> SimTime {
        self.node_res[0].busy_until()
    }

    /// Reset every resource to idle at time zero.
    pub fn reset(&mut self) {
        for r in &mut self.node_res {
            r.reset();
        }
        for r in self.link_res.iter_mut().flatten() {
            r.reset();
        }
        for r in self.comp_res.iter_mut().flatten() {
            r.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use northup::presets;
    use northup_hw::catalog;
    use northup_sim::SimDur;

    fn leaf_of(tree: &Tree) -> NodeId {
        tree.leaves().next().unwrap().id
    }

    #[test]
    fn chunks_on_one_leaf_serialize_on_shared_resources() {
        let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
        let mut fab = SimFabric::new(&tree);
        let leaf = leaf_of(&tree);
        let work = JobWork::new(1)
            .read(64 << 20)
            .xfer(64 << 20)
            .compute(SimDur::from_millis(3));
        let t1 = fab.run_chunk(leaf, SimTime::ZERO, &work);
        let t2 = fab.run_chunk(leaf, SimTime::ZERO, &work);
        assert!(t1 > SimTime::ZERO);
        assert!(
            t2 > t1,
            "second chunk must queue behind the first on shared SSD/link"
        );
    }

    #[test]
    fn stage_plan_covers_the_path_and_skips_zero_cost() {
        let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
        let fab = SimFabric::new(&tree);
        let leaf = leaf_of(&tree);
        let full = fab.plan_stages(
            leaf,
            &JobWork::new(1)
                .read(1)
                .xfer(1)
                .compute(SimDur::from_micros(1))
                .write(1),
        );
        assert_eq!(full.first(), Some(&Stage::RootRead));
        assert_eq!(full.last(), Some(&Stage::RootWrite));
        assert!(full.contains(&Stage::Compute(leaf)));
        let read_only = fab.plan_stages(leaf, &JobWork::new(1).read(1));
        assert_eq!(read_only, vec![Stage::RootRead]);
        assert!(fab.plan_stages(leaf, &JobWork::new(1)).is_empty());
    }

    #[test]
    fn reset_restores_idle_fabric() {
        let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
        let mut fab = SimFabric::new(&tree);
        let leaf = leaf_of(&tree);
        let work = JobWork::new(1).read(1 << 20).xfer(1 << 20);
        let t1 = fab.run_chunk(leaf, SimTime::ZERO, &work);
        fab.reset();
        let t2 = fab.run_chunk(leaf, SimTime::ZERO, &work);
        assert_eq!(t1, t2, "deterministic replay after reset");
    }
}
