//! The real-execution backend of the stage-chain IR: chunk chains driven
//! through a `northup::Runtime` in [`ExecMode::Real`] on the
//! `northup-exec` work-stealing pool.
//!
//! Where [`SimFabric`](crate::SimFabric) *books* a chunk's stages on
//! virtual-time resources, [`RealFabric`] *performs* them: the staging
//! buffer is really allocated (and metered against the job's installed
//! [`CapacityLease`] — an over-budget chunk fails with `LeaseExceeded`
//! right at `alloc`, the enforcement point admission promised), bytes
//! really move from the root file buffer through the runtime's storage
//! backends, and the leaf "kernel" really reads the staged bytes on the
//! thread pool, folding them into a commutative checksum so results are
//! identical for any thread count.
//!
//! One `RealFabric` is one job's execution arena. The scheduler-level
//! contract stays chunk-granular: callers drive chunks in order (usually
//! via `northup_exec::ThreadPool::run_chain`, which polls a
//! [`CancelToken`](northup_exec::CancelToken) at every boundary), and an
//! evicted job simply constructs a fresh fabric later and resumes from
//! its [`Checkpoint`](northup::fabric::Checkpoint) — completed chunks
//! are never re-run.

use northup::fabric::{ChunkChain, Fabric, FabricError};
use northup::lease::CapacityLease;
use northup::{ExecMode, NodeId, Result, Runtime, Tree};
use northup_exec::ThreadPool;
use northup_sim::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Real-thread chunk-chain execution for one job.
pub struct RealFabric {
    tree: Tree,
    rt: Runtime,
    pool: Arc<ThreadPool>,
    file: northup::BufferHandle,
    file_bytes: u64,
    checksum: u64,
}

impl RealFabric {
    /// A fabric over `tree` (in `ExecMode::Real`) with a root file buffer
    /// of `file_bytes` filled with a deterministic byte pattern — the
    /// "dataset" every chunk reads from and writes back to. Install the
    /// job's lease with [`install_lease`](Self::install_lease) *after*
    /// construction so the shared input file is not charged to the job.
    pub fn new(tree: &Tree, pool: Arc<ThreadPool>, file_bytes: u64) -> Result<Self> {
        let rt = Runtime::new(tree.clone(), ExecMode::Real)?;
        let file_bytes = file_bytes.max(1);
        let file = rt.alloc(file_bytes, tree.root())?;
        // Deterministic non-trivial content, written in bounded strips.
        let mut off = 0u64;
        let strip = 1u64 << 16;
        let mut buf = vec![0u8; strip as usize];
        while off < file_bytes {
            let n = strip.min(file_bytes - off) as usize;
            for (i, b) in buf[..n].iter_mut().enumerate() {
                *b = ((off as usize + i) as u8).wrapping_mul(31).wrapping_add(7);
            }
            rt.write_slice(file, off, &buf[..n])?;
            off += n as u64;
        }
        Ok(RealFabric {
            tree: tree.clone(),
            rt,
            pool,
            file,
            file_bytes,
            checksum: 0,
        })
    }

    /// Install the job's capacity lease on the underlying runtime, so
    /// every staging `alloc` this fabric performs is metered against it.
    /// Returns the previously installed lease, if any.
    pub fn install_lease(&self, lease: Arc<CapacityLease>) -> Option<Arc<CapacityLease>> {
        self.rt.install_lease(lease)
    }

    /// The underlying runtime (timeline, lease inspection).
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// The commutative checksum folded over every staged byte so far.
    /// Deterministic for a given (file pattern, chunk set) regardless of
    /// thread count or chunk interleaving — the mode-agreement tests
    /// compare it between runs.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    fn leaf_proc(&self, leaf: NodeId) -> Option<northup::ProcKind> {
        self.tree.node(leaf).procs.first().map(|p| p.kind)
    }
}

impl Fabric for RealFabric {
    /// Perform one chunk for real: allocate the staging buffer under the
    /// lease, move the chunk's bytes down from the root file, run the
    /// checksum kernel over the staged bytes on the pool, move the
    /// write-back bytes up, release the buffer. Returns the runtime's
    /// virtual completion (its charged makespan), which is monotone
    /// across chunks.
    fn run_chunk(
        &mut self,
        chain: &ChunkChain,
        idx: u32,
        ready: SimTime,
    ) -> std::result::Result<SimTime, FabricError> {
        let work = chain.work;
        let stage_bytes = work.xfer_bytes.max(work.write_bytes);
        let staging = chain.staging_node(&self.tree);

        let buf = if stage_bytes > 0 {
            Some(self.rt.alloc(stage_bytes, staging)?)
        } else {
            None
        };

        if let Some(buf) = buf {
            if work.read_bytes > 0 || work.xfer_bytes > 0 {
                // Root read + link staging in one runtime move; chunks
                // wrap around the shared file so every index is in range.
                let n = work
                    .xfer_bytes
                    .max(work.read_bytes)
                    .min(stage_bytes)
                    .min(self.file_bytes);
                let src_off = (u64::from(idx) * n) % (self.file_bytes - n + 1).max(1);
                self.rt.move_data(buf, 0, self.file, src_off, n)?;

                // The real kernel: fold the staged bytes into a
                // commutative (wrapping-add) checksum on the pool.
                let mut bytes = vec![0u8; n as usize];
                self.rt.read_slice(buf, 0, &mut bytes)?;
                let acc = AtomicU64::new(0);
                self.pool.par_for(bytes.len(), 1 << 14, |r| {
                    let mut s = 0u64;
                    for &b in &bytes[r] {
                        s = s.wrapping_add(u64::from(b));
                    }
                    acc.fetch_add(s, Ordering::Relaxed);
                });
                self.checksum = self.checksum.wrapping_add(acc.into_inner());
            }
            if work.compute > northup_sim::SimDur::ZERO {
                if let Some(kind) = self.leaf_proc(chain.leaf) {
                    self.rt
                        .charge_compute(chain.leaf, kind, work.compute, &[buf], &[], "chunk")?;
                }
            }
            if work.write_bytes > 0 {
                let n = work.write_bytes.min(stage_bytes).min(self.file_bytes);
                self.rt.move_data(self.file, 0, buf, 0, n)?;
            }
            self.rt.release(buf)?;
        } else if work.compute > northup_sim::SimDur::ZERO {
            if let Some(kind) = self.leaf_proc(chain.leaf) {
                self.rt
                    .charge_compute(chain.leaf, kind, work.compute, &[], &[], "chunk")?;
            }
        }

        let end = SimTime::ZERO + self.rt.makespan();
        Ok(end.max(ready))
    }

    /// Rebuild the runtime (fresh timeline, fresh file pattern) and clear
    /// the checksum.
    fn reset(&mut self) -> std::result::Result<(), FabricError> {
        let fresh = RealFabric::new(&self.tree, Arc::clone(&self.pool), self.file_bytes)
            .map_err(FabricError::Reset)?;
        self.rt = fresh.rt;
        self.file = fresh.file;
        self.checksum = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobWork;
    use crate::reserve::Reservation;
    use northup::fabric::build_chain;
    use northup::presets;
    use northup_exec::CancelToken;
    use northup_hw::catalog;
    use northup_sim::SimDur;

    fn tree() -> Tree {
        presets::apu_two_level(catalog::ssd_hyperx_predator())
    }

    fn chain(tree: &Tree, chunks: u32, bytes: u64) -> ChunkChain {
        let leaf = tree.leaves().next().unwrap().id;
        build_chain(
            tree,
            leaf,
            JobWork::new(chunks)
                .read(bytes)
                .xfer(bytes)
                .compute(SimDur::from_micros(50))
                .write(bytes / 2)
                .chunk_work(),
            chunks,
        )
    }

    #[test]
    fn chunks_advance_virtual_time_and_accumulate_checksum() {
        let tree = tree();
        let pool = Arc::new(ThreadPool::new(2));
        let mut fab = RealFabric::new(&tree, pool, 1 << 20).unwrap();
        let ch = chain(&tree, 3, 64 << 10);
        let t1 = fab.run_chunk(&ch, 0, SimTime::ZERO).unwrap();
        let c1 = fab.checksum();
        let t2 = fab.run_chunk(&ch, 1, t1).unwrap();
        assert!(t1 > SimTime::ZERO);
        assert!(t2 > t1, "real chunks accrue charged time");
        assert_ne!(c1, 0);
        assert_ne!(fab.checksum(), c1);
    }

    #[test]
    fn checksum_is_thread_count_independent() {
        let tree = tree();
        let run = |threads| {
            let pool = Arc::new(ThreadPool::new(threads));
            let mut fab = RealFabric::new(&tree, pool, 1 << 20).unwrap();
            let ch = chain(&tree, 4, 128 << 10);
            let mut t = SimTime::ZERO;
            for i in 0..4 {
                t = fab.run_chunk(&ch, i, t).unwrap();
            }
            fab.checksum()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn lease_is_enforced_at_staging_alloc() {
        let tree = tree();
        let staging = tree.children(tree.root())[0];
        let pool = Arc::new(ThreadPool::new(2));
        let mut fab = RealFabric::new(&tree, pool, 1 << 20).unwrap();
        let bytes = 256u64 << 10;
        // Lease covers less than one staging buffer: the very first chunk
        // must fail at alloc.
        let lease = Reservation::new().with(staging, bytes / 2).to_lease();
        fab.install_lease(lease);
        let ch = chain(&tree, 2, bytes);
        let err = fab.run_chunk(&ch, 0, SimTime::ZERO);
        assert!(err.is_err(), "alloc beyond the lease must fail");

        // A covering lease succeeds (alloc/release per chunk, so one
        // buffer's worth is enough for many chunks).
        let mut fab2 = RealFabric::new(&tree, Arc::new(ThreadPool::new(2)), 1 << 20).unwrap();
        fab2.install_lease(Reservation::new().with(staging, bytes).to_lease());
        let mut t = SimTime::ZERO;
        for i in 0..2 {
            t = fab2.run_chunk(&ch, i, t).unwrap();
        }
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn run_chain_resumes_from_checkpoint_without_rerunning_chunks() {
        let tree = tree();
        let pool = Arc::new(ThreadPool::new(2));
        let ch = chain(&tree, 6, 32 << 10);

        // Uninterrupted reference.
        let mut whole = RealFabric::new(&tree, Arc::clone(&pool), 1 << 20).unwrap();
        let mut t = SimTime::ZERO;
        for i in 0..6 {
            t = whole.run_chunk(&ch, i, t).unwrap();
        }

        // Evicted after 2 chunks, resumed on a fresh fabric from the
        // checkpoint: same chunk set ⇒ same checksum.
        let mut a = RealFabric::new(&tree, Arc::clone(&pool), 1 << 20).unwrap();
        let token = CancelToken::new();
        let tok = Arc::clone(&token);
        let mut t = SimTime::ZERO;
        let first = pool.run_chain(0, 6, &token, |i| {
            if i == 1 {
                tok.cancel();
            }
            t = a.run_chunk(&ch, i, t).unwrap();
            true
        });
        assert_eq!(first, 2);
        let mut b = RealFabric::new(&tree, Arc::clone(&pool), 1 << 20).unwrap();
        let token2 = CancelToken::new();
        let mut t2 = SimTime::ZERO;
        let second = pool.run_chain(first, 6, &token2, |i| {
            t2 = b.run_chunk(&ch, i, t2).unwrap();
            true
        });
        assert_eq!(first + second, 6);
        assert_eq!(
            whole.checksum(),
            a.checksum().wrapping_add(b.checksum()),
            "evict+resume covers exactly the same chunks"
        );
    }

    #[test]
    fn reset_restores_a_fresh_arena() {
        let tree = tree();
        let pool = Arc::new(ThreadPool::new(1));
        let mut fab = RealFabric::new(&tree, pool, 1 << 20).unwrap();
        let ch = chain(&tree, 1, 16 << 10);
        let t1 = fab.run_chunk(&ch, 0, SimTime::ZERO).unwrap();
        let c1 = fab.checksum();
        fab.reset().unwrap();
        assert_eq!(fab.checksum(), 0);
        let t2 = fab.run_chunk(&ch, 0, SimTime::ZERO).unwrap();
        assert_eq!(t1, t2, "fresh arena replays identically");
        assert_eq!(fab.checksum(), c1);
    }
}
