//! The real-execution backend of the stage-chain IR: chunk chains driven
//! through a `northup::Runtime` in [`ExecMode::Real`] on the
//! `northup-exec` work-stealing pool.
//!
//! Where [`SimFabric`](crate::SimFabric) *books* a chunk's stages on
//! virtual-time resources, [`RealFabric`] *performs* them: the staging
//! buffer is really allocated (and metered against the job's installed
//! [`CapacityLease`] — an over-budget chunk fails with `LeaseExceeded`
//! right at `alloc`, the enforcement point admission promised), bytes
//! really move from the root file buffer through the runtime's storage
//! backends, and the leaf "kernel" really reads the staged bytes on the
//! thread pool, folding them into a commutative checksum so results are
//! identical for any thread count.
//!
//! One `RealFabric` is one job's execution arena. The scheduler-level
//! contract stays chunk-granular: callers drive chunks in order (usually
//! via `northup_exec::ThreadPool::run_chain`, which polls a
//! [`CancelToken`](northup_exec::CancelToken) at every boundary), and an
//! evicted job simply constructs a fresh fabric later and resumes from
//! its [`Checkpoint`](northup::fabric::Checkpoint) — completed chunks
//! are never re-run.

use northup::fabric::{ChunkChain, Fabric, FabricError};
use northup::fault::FaultPlan;
use northup::lease::CapacityLease;
use northup::runtime::SetupCosts;
use northup::{BufferHandle, ExecMode, NodeId, Result, Runtime, Tree};
use northup_exec::ThreadPool;
use northup_hw::{FaultOps, FaultyBackend, HeapBackend, StorageBackend};
use northup_sim::SimTime;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Real-thread chunk-chain execution for one job.
pub struct RealFabric {
    tree: Tree,
    rt: Runtime,
    pool: Arc<ThreadPool>,
    file: northup::BufferHandle,
    file_bytes: u64,
    checksum: u64,
    /// Deterministic device-fault wiring; `None` runs on pristine backends.
    plan: Option<FaultPlan>,
    /// How many arenas this fabric has built (bumped by `reset`). Seeds
    /// the fault-phase offset of rebuilt backends so a reset continues —
    /// rather than replays — the fault stream.
    epoch: u64,
}

impl RealFabric {
    /// A fabric over `tree` (in `ExecMode::Real`) with a root file buffer
    /// of `file_bytes` filled with a deterministic byte pattern — the
    /// "dataset" every chunk reads from and writes back to. Install the
    /// job's lease with [`install_lease`](Self::install_lease) *after*
    /// construction so the shared input file is not charged to the job.
    pub fn new(tree: &Tree, pool: Arc<ThreadPool>, file_bytes: u64) -> Result<Self> {
        Self::build(tree, pool, file_bytes, None)
    }

    /// Like [`new`](Self::new), but every non-root node targeted by
    /// `plan` gets its storage backend wrapped in a deterministic fault
    /// injector ([`FaultyBackend`]): the node fails every `n`-th
    /// read/write, with `n` derived from the plan's transient rate
    /// ([`FaultPlan::real_fail_every`]). The root is exempt — the shared
    /// dataset must stay intact for chunks to be retryable; root-storage
    /// faults are exercised by the modeled fabric instead. Two fabrics
    /// built from the same plan fail on identical operation ordinals, so
    /// chaos runs are reproducible bit for bit.
    pub fn with_faults(
        tree: &Tree,
        pool: Arc<ThreadPool>,
        file_bytes: u64,
        plan: FaultPlan,
    ) -> Result<Self> {
        Self::build(tree, pool, file_bytes, Some(plan))
    }

    fn build(
        tree: &Tree,
        pool: Arc<ThreadPool>,
        file_bytes: u64,
        plan: Option<FaultPlan>,
    ) -> Result<Self> {
        let file_bytes = file_bytes.max(1);
        let (rt, file) = Self::build_arena(tree, file_bytes, plan.as_ref(), 0)?;
        Ok(RealFabric {
            tree: tree.clone(),
            rt,
            pool,
            file,
            file_bytes,
            checksum: 0,
            plan,
            epoch: 0,
        })
    }

    /// Construct one execution arena: a real-mode runtime (with fault
    /// injectors wired per `plan`) and the filled root dataset buffer.
    /// `epoch` pre-advances every injector's operation counter so each
    /// rebuild continues the fault phase deterministically instead of
    /// restarting it.
    fn build_arena(
        tree: &Tree,
        file_bytes: u64,
        plan: Option<&FaultPlan>,
        epoch: u64,
    ) -> Result<(Runtime, BufferHandle)> {
        let root = tree.root();
        let factory = move |node: &northup::Node| -> Option<Box<dyn StorageBackend>> {
            let plan = plan?;
            if node.id == root {
                return None;
            }
            let fail_every = plan.real_fail_every(node.id)?;
            Some(Box::new(FaultyBackend::starting_at(
                HeapBackend::new(&node.mem.name, node.mem.capacity),
                FaultOps::ReadsAndWrites,
                fail_every,
                epoch,
            )))
        };
        let rt = Runtime::with_custom_backends(
            tree.clone(),
            ExecMode::Real,
            SetupCosts::default(),
            &factory,
        )?;
        // analyze:allow(lease-discipline): the handle escapes to the caller inside the returned (Runtime, BufferHandle) arena tuple; RealFabric owns and releases it
        let file = rt.alloc(file_bytes, root)?;
        // Deterministic non-trivial content, written in bounded strips.
        let mut off = 0u64;
        let strip = 1u64 << 16;
        let mut buf = vec![0u8; strip as usize];
        while off < file_bytes {
            let n = strip.min(file_bytes - off) as usize;
            for (i, b) in buf[..n].iter_mut().enumerate() {
                *b = ((off as usize + i) as u8).wrapping_mul(31).wrapping_add(7);
            }
            rt.write_slice(file, off, &buf[..n])?;
            off += n as u64;
        }
        Ok((rt, file))
    }

    /// Install the job's capacity lease on the underlying runtime, so
    /// every staging `alloc` this fabric performs is metered against it.
    /// Returns the previously installed lease, if any.
    pub fn install_lease(&self, lease: Arc<CapacityLease>) -> Option<Arc<CapacityLease>> {
        self.rt.install_lease(lease)
    }

    /// The underlying runtime (timeline, lease inspection).
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// The commutative checksum folded over every staged byte so far.
    /// Deterministic for a given (file pattern, chunk set) regardless of
    /// thread count or chunk interleaving — the mode-agreement tests
    /// compare it between runs.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// The fault plan wired into this fabric's backends, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// How many times this fabric has rebuilt its arena via
    /// [`reset`](Fabric::reset).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    fn leaf_proc(&self, leaf: NodeId) -> Option<northup::ProcKind> {
        self.tree.node(leaf).procs.first().map(|p| p.kind)
    }

    /// All of a chunk's data movement and kernel work, excluding staging
    /// alloc/release. The checksum commit is the *last* statement: a
    /// failed attempt (injected device fault, lease breach) leaves no
    /// visible side effect, so re-running the chunk after a fault applies
    /// its effects exactly once.
    fn chunk_body(
        &mut self,
        chain: &ChunkChain,
        idx: u32,
        buf: Option<BufferHandle>,
    ) -> Result<()> {
        let work = chain.work;
        let stage_bytes = work.xfer_bytes.max(work.write_bytes);
        let mut chunk_sum = 0u64;
        if let Some(buf) = buf {
            if work.read_bytes > 0 || work.xfer_bytes > 0 {
                // Root read + link staging in one runtime move; chunks
                // wrap around the shared file so every index is in range.
                let n = work
                    .xfer_bytes
                    .max(work.read_bytes)
                    .min(stage_bytes)
                    .min(self.file_bytes);
                let src_off = (u64::from(idx) * n) % (self.file_bytes - n + 1).max(1);
                self.rt.move_data(buf, 0, self.file, src_off, n)?;

                // The real kernel: fold the staged bytes into a
                // commutative (wrapping-add) checksum on the pool.
                let mut bytes = vec![0u8; n as usize];
                self.rt.read_slice(buf, 0, &mut bytes)?;
                let acc = AtomicU64::new(0);
                self.pool.par_for(bytes.len(), 1 << 14, |r| {
                    let mut s = 0u64;
                    for &b in &bytes[r] {
                        s = s.wrapping_add(u64::from(b));
                    }
                    acc.fetch_add(s, Ordering::Relaxed);
                });
                chunk_sum = acc.into_inner();
            }
            if work.compute > northup_sim::SimDur::ZERO {
                if let Some(kind) = self.leaf_proc(chain.leaf) {
                    self.rt
                        .charge_compute(chain.leaf, kind, work.compute, &[buf], &[], "chunk")?;
                }
            }
            if work.write_bytes > 0 {
                // Write-back lands at a fixed offset with deterministic
                // content, so a retried chunk re-applies identical bytes.
                let n = work.write_bytes.min(stage_bytes).min(self.file_bytes);
                self.rt.move_data(self.file, 0, buf, 0, n)?;
            }
        } else if work.compute > northup_sim::SimDur::ZERO {
            if let Some(kind) = self.leaf_proc(chain.leaf) {
                self.rt
                    .charge_compute(chain.leaf, kind, work.compute, &[], &[], "chunk")?;
            }
        }
        self.checksum = self.checksum.wrapping_add(chunk_sum);
        Ok(())
    }
}

impl Fabric for RealFabric {
    /// Perform one chunk for real: allocate the staging buffer under the
    /// lease, move the chunk's bytes down from the root file, run the
    /// checksum kernel over the staged bytes on the pool, move the
    /// write-back bytes up, release the buffer. Returns the runtime's
    /// virtual completion (its charged makespan), which is monotone
    /// across chunks.
    ///
    /// The chunk is **transactional** under faults: the staging buffer is
    /// released on the error path too (a faulted chunk never leaks lease
    /// bytes, so the retry's alloc sees the full reservation) and the
    /// checksum commits only when every stage succeeded — retrying a
    /// failed chunk applies its side effects exactly once.
    fn run_chunk(
        &mut self,
        chain: &ChunkChain,
        idx: u32,
        ready: SimTime,
    ) -> std::result::Result<SimTime, FabricError> {
        let work = chain.work;
        let stage_bytes = work.xfer_bytes.max(work.write_bytes);
        let staging = chain.staging_node(&self.tree);

        let buf = if stage_bytes > 0 {
            Some(self.rt.alloc(stage_bytes, staging)?)
        } else {
            None
        };

        let body = self.chunk_body(chain, idx, buf);
        if let Some(buf) = buf {
            let released = self.rt.release(buf);
            body?; // the chunk's own fault takes precedence...
            released?; // ...but a clean chunk still reports release errors
        } else {
            body?;
        }

        let end = SimTime::ZERO + self.rt.makespan();
        Ok(end.max(ready))
    }

    /// Rebuild the execution arena: fresh runtime timeline, fresh file
    /// pattern, cleared checksum, fault-injection phase advanced to the
    /// next epoch. The installed capacity lease carries over — a reset
    /// fabric still meters the same admitted reservation.
    ///
    /// Strongly exception-safe and idempotent: the replacement arena is
    /// fully built *before* any of `self` is touched, so a failed reset
    /// (e.g. the file refill trips an injected fault) leaves the previous
    /// arena intact and the reset can simply be retried.
    fn reset(&mut self) -> std::result::Result<(), FabricError> {
        let epoch = self.epoch + 1;
        let (rt, file) = Self::build_arena(&self.tree, self.file_bytes, self.plan.as_ref(), epoch)
            .map_err(FabricError::Reset)?;
        if let Some(lease) = self.rt.lease() {
            rt.install_lease(lease);
        }
        self.rt = rt;
        self.file = file;
        self.checksum = 0;
        self.epoch = epoch;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobWork;
    use crate::reserve::Reservation;
    use northup::fabric::build_chain;
    use northup::presets;
    use northup_exec::CancelToken;
    use northup_hw::catalog;
    use northup_sim::SimDur;

    fn tree() -> Tree {
        presets::apu_two_level(catalog::ssd_hyperx_predator())
    }

    fn chain(tree: &Tree, chunks: u32, bytes: u64) -> ChunkChain {
        let leaf = tree.leaves().next().unwrap().id;
        build_chain(
            tree,
            leaf,
            JobWork::new(chunks)
                .read(bytes)
                .xfer(bytes)
                .compute(SimDur::from_micros(50))
                .write(bytes / 2)
                .chunk_work(),
            chunks,
        )
    }

    #[test]
    fn chunks_advance_virtual_time_and_accumulate_checksum() {
        let tree = tree();
        let pool = Arc::new(ThreadPool::new(2));
        let mut fab = RealFabric::new(&tree, pool, 1 << 20).unwrap();
        let ch = chain(&tree, 3, 64 << 10);
        let t1 = fab.run_chunk(&ch, 0, SimTime::ZERO).unwrap();
        let c1 = fab.checksum();
        let t2 = fab.run_chunk(&ch, 1, t1).unwrap();
        assert!(t1 > SimTime::ZERO);
        assert!(t2 > t1, "real chunks accrue charged time");
        assert_ne!(c1, 0);
        assert_ne!(fab.checksum(), c1);
    }

    #[test]
    fn checksum_is_thread_count_independent() {
        let tree = tree();
        let run = |threads| {
            let pool = Arc::new(ThreadPool::new(threads));
            let mut fab = RealFabric::new(&tree, pool, 1 << 20).unwrap();
            let ch = chain(&tree, 4, 128 << 10);
            let mut t = SimTime::ZERO;
            for i in 0..4 {
                t = fab.run_chunk(&ch, i, t).unwrap();
            }
            fab.checksum()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn lease_is_enforced_at_staging_alloc() {
        let tree = tree();
        let staging = tree.children(tree.root())[0];
        let pool = Arc::new(ThreadPool::new(2));
        let mut fab = RealFabric::new(&tree, pool, 1 << 20).unwrap();
        let bytes = 256u64 << 10;
        // Lease covers less than one staging buffer: the very first chunk
        // must fail at alloc.
        let lease = Reservation::new().with(staging, bytes / 2).to_lease();
        fab.install_lease(lease);
        let ch = chain(&tree, 2, bytes);
        let err = fab.run_chunk(&ch, 0, SimTime::ZERO);
        assert!(err.is_err(), "alloc beyond the lease must fail");

        // A covering lease succeeds (alloc/release per chunk, so one
        // buffer's worth is enough for many chunks).
        let mut fab2 = RealFabric::new(&tree, Arc::new(ThreadPool::new(2)), 1 << 20).unwrap();
        fab2.install_lease(Reservation::new().with(staging, bytes).to_lease());
        let mut t = SimTime::ZERO;
        for i in 0..2 {
            t = fab2.run_chunk(&ch, i, t).unwrap();
        }
        assert!(t > SimTime::ZERO);
    }

    #[test]
    fn run_chain_resumes_from_checkpoint_without_rerunning_chunks() {
        let tree = tree();
        let pool = Arc::new(ThreadPool::new(2));
        let ch = chain(&tree, 6, 32 << 10);

        // Uninterrupted reference.
        let mut whole = RealFabric::new(&tree, Arc::clone(&pool), 1 << 20).unwrap();
        let mut t = SimTime::ZERO;
        for i in 0..6 {
            t = whole.run_chunk(&ch, i, t).unwrap();
        }

        // Evicted after 2 chunks, resumed on a fresh fabric from the
        // checkpoint: same chunk set ⇒ same checksum.
        let mut a = RealFabric::new(&tree, Arc::clone(&pool), 1 << 20).unwrap();
        let token = CancelToken::new();
        let tok = Arc::clone(&token);
        let mut t = SimTime::ZERO;
        let first = pool.run_chain(0, 6, &token, |i| {
            if i == 1 {
                tok.cancel();
            }
            t = a.run_chunk(&ch, i, t).unwrap();
            true
        });
        assert_eq!(first, 2);
        let mut b = RealFabric::new(&tree, Arc::clone(&pool), 1 << 20).unwrap();
        let token2 = CancelToken::new();
        let mut t2 = SimTime::ZERO;
        let second = pool.run_chain(first, 6, &token2, |i| {
            t2 = b.run_chunk(&ch, i, t2).unwrap();
            true
        });
        assert_eq!(first + second, 6);
        assert_eq!(
            whole.checksum(),
            a.checksum().wrapping_add(b.checksum()),
            "evict+resume covers exactly the same chunks"
        );
    }

    #[test]
    fn reset_restores_a_fresh_arena() {
        let tree = tree();
        let pool = Arc::new(ThreadPool::new(1));
        let mut fab = RealFabric::new(&tree, pool, 1 << 20).unwrap();
        let ch = chain(&tree, 1, 16 << 10);
        let t1 = fab.run_chunk(&ch, 0, SimTime::ZERO).unwrap();
        let c1 = fab.checksum();
        fab.reset().unwrap();
        assert_eq!(fab.checksum(), 0);
        assert_eq!(fab.epoch(), 1);
        let t2 = fab.run_chunk(&ch, 0, SimTime::ZERO).unwrap();
        assert_eq!(t1, t2, "fresh arena replays identically");
        assert_eq!(fab.checksum(), c1);
    }

    /// The transient-fault rate 16384/65536 wires a period-4 injector on
    /// the staging node; a clean chunk costs 3 staging ops, so faults
    /// land on every other chunk or so.
    fn chaos_plan() -> northup::FaultPlan {
        northup::FaultPlan::new(11).transient_rate(16384)
    }

    #[test]
    fn faulted_chunks_are_transactional_and_retry_to_the_clean_checksum() {
        let tree = tree();
        let staging = tree.children(tree.root())[0];
        let pool = Arc::new(ThreadPool::new(2));
        let ch = chain(&tree, 4, 64 << 10);

        let mut clean = RealFabric::new(&tree, Arc::clone(&pool), 1 << 20).unwrap();
        let mut t = SimTime::ZERO;
        for i in 0..4 {
            t = clean.run_chunk(&ch, i, t).unwrap();
        }

        let mut chaos =
            RealFabric::with_faults(&tree, Arc::clone(&pool), 1 << 20, chaos_plan()).unwrap();
        let mut t = SimTime::ZERO;
        let mut errors = 0;
        for i in 0..4 {
            loop {
                match chaos.run_chunk(&ch, i, t) {
                    Ok(end) => {
                        t = end;
                        break;
                    }
                    Err(e) => {
                        errors += 1;
                        assert!(matches!(e, FabricError::Runtime(_)), "{e}");
                        // A faulted chunk releases its staging buffer: no
                        // lease/capacity leak across retries.
                        assert_eq!(chaos.runtime().used(staging), 0);
                        assert!(errors < 32, "retries must converge");
                    }
                }
            }
        }
        assert!(errors > 0, "the plan must actually inject");
        assert_eq!(
            chaos.checksum(),
            clean.checksum(),
            "failed attempts commit nothing: retries make the chaos run \
             byte-equivalent to the clean one"
        );
    }

    #[test]
    fn chaos_fault_pattern_is_reproducible_across_fabrics_and_resets() {
        let tree = tree();
        let ch = chain(&tree, 3, 32 << 10);
        let run = || {
            let pool = Arc::new(ThreadPool::new(2));
            let mut fab = RealFabric::with_faults(&tree, pool, 1 << 20, chaos_plan()).unwrap();
            let mut pattern = Vec::new();
            for i in 0..3 {
                pattern.push(fab.run_chunk(&ch, i, SimTime::ZERO).is_err());
            }
            fab.reset().unwrap();
            for i in 0..3 {
                pattern.push(fab.run_chunk(&ch, i, SimTime::ZERO).is_err());
            }
            (pattern, fab.checksum(), fab.epoch())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same plan + same ops ⇒ same faults, bit for bit");
        assert!(a.0.iter().any(|&e| e), "some attempt faulted");
        assert!(a.0.iter().any(|&e| !e), "some attempt succeeded");
    }

    #[test]
    fn reset_preserves_the_installed_lease() {
        let tree = tree();
        let staging = tree.children(tree.root())[0];
        let pool = Arc::new(ThreadPool::new(1));
        let mut fab = RealFabric::new(&tree, pool, 1 << 20).unwrap();
        let bytes = 256u64 << 10;
        fab.install_lease(Reservation::new().with(staging, bytes / 2).to_lease());
        let ch = chain(&tree, 1, bytes);
        assert!(fab.run_chunk(&ch, 0, SimTime::ZERO).is_err());
        fab.reset().unwrap();
        assert!(
            fab.runtime().lease().is_some(),
            "the admitted reservation survives the rebuild"
        );
        assert!(
            fab.run_chunk(&ch, 0, SimTime::ZERO).is_err(),
            "still metered after reset"
        );
    }

    #[test]
    fn reset_is_idempotent() {
        let tree = tree();
        let pool = Arc::new(ThreadPool::new(1));
        let mut fab = RealFabric::new(&tree, pool, 1 << 20).unwrap();
        let ch = chain(&tree, 1, 16 << 10);
        let t1 = fab.run_chunk(&ch, 0, SimTime::ZERO).unwrap();
        fab.reset().unwrap();
        fab.reset().unwrap(); // back-to-back resets are harmless
        assert_eq!(fab.epoch(), 2);
        let t2 = fab.run_chunk(&ch, 0, SimTime::ZERO).unwrap();
        assert_eq!(t1, t2);
    }
}
