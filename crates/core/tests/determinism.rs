//! Determinism regression: schedule-visible containers must iterate in a
//! stable order, so identical workloads produce byte-identical reports
//! and DAG renderings — regardless of the order buffers were created in.
//!
//! This is the runtime-level counterpart of the `ordered-iteration`
//! rule `northup-analyze` enforces statically: `core`, `sched`, and
//! `sim` may not use `HashMap`/`HashSet` where iteration order can leak
//! into a schedule or a report.

use northup::{presets, ExecMode, NodeId, ProcKind, Runtime};
use northup_hw::catalog;
use northup_sim::SimDur;

/// One workload: allocate a handful of buffers (in the order given by
/// `order`), move data between them, run a kernel, and release half.
/// Returns the DOT rendering and the category histogram of the recorded
/// DAG plus the run's breakdown debug string.
fn run_workload(order: &[usize]) -> (String, String, String) {
    let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
    let leaf = tree.leaves().next().expect("preset has a leaf").id;
    let rt = Runtime::new(tree, ExecMode::Real).expect("runtime");
    rt.enable_dag();

    // `order` permutes which logical slot gets which handle number, so
    // two runs insert into the runtime's buffer map in different orders.
    let mut bufs = vec![None; order.len()];
    for &slot in order {
        bufs[slot] = Some(rt.alloc(4096, NodeId(0)).expect("alloc"));
    }
    let bufs: Vec<_> = bufs.into_iter().map(|b| b.expect("filled")).collect();

    let stage = rt.alloc(4096, leaf).expect("staging alloc");
    for &b in &bufs {
        rt.move_data(stage, 0, b, 0, 4096).expect("move down");
    }
    rt.charge_compute(
        leaf,
        ProcKind::Gpu,
        SimDur::from_micros(10),
        &[stage],
        &[stage],
        "kernel",
    )
    .expect("compute");
    for &b in &bufs[..bufs.len() / 2] {
        rt.release(b).expect("release");
    }

    let dag = rt.task_dag();
    (
        dag.render_dot(),
        format!("{:?}", dag.category_histogram()),
        format!("{:?}", rt.report().breakdown),
    )
}

#[test]
fn identical_workloads_render_identically() {
    let a = run_workload(&[0, 1, 2, 3]);
    let b = run_workload(&[0, 1, 2, 3]);
    assert_eq!(a, b, "same workload, same process: outputs must match");
}

#[test]
fn shuffled_buffer_creation_only_relabels_nodes() {
    // Different creation orders give different handle numbering, but the
    // *structure* of the recorded DAG (node count, edge count, category
    // mix) and the charged schedule must be identical: nothing in the
    // runtime may iterate a container in creation order.
    let a = run_workload(&[0, 1, 2, 3]);
    let b = run_workload(&[3, 1, 0, 2]);
    let c = run_workload(&[2, 3, 1, 0]);
    assert_eq!(a.1, b.1, "category histogram independent of alloc order");
    assert_eq!(a.1, c.1);
    assert_eq!(a.2, b.2, "breakdown independent of alloc order");
    assert_eq!(a.2, c.2);
}

#[test]
fn fault_plan_streams_are_pure_functions_of_their_coordinates() {
    use northup::{FaultPlan, NodeId};
    // Every decision and jitter draw is a pure hash of (seed, node,
    // ordinal[, attempt]) — no interior state, so interleaving queries
    // across nodes or replaying them out of order changes nothing.
    let plan = FaultPlan::new(0xFEED)
        .transient_rate(9_000)
        .persistent_rate(700);
    let p = &plan;
    let forward: Vec<_> = (0..64)
        .flat_map(|ord| (0..3).map(move |n| p.decide(NodeId(n), ord)))
        .collect();
    let backward: Vec<_> = (0..64)
        .rev()
        .flat_map(|ord| (0..3).rev().map(move |n| p.decide(NodeId(n), ord)))
        .collect();
    let rewound: Vec<_> = backward.into_iter().rev().collect();
    // `forward` visits (ord, node) ascending; `rewound` is the descending
    // visit re-reversed: identical iff decide() is stateless.
    assert_eq!(forward, rewound);
    assert!(forward.iter().any(|d| d.is_some()), "rates must fire");
    for attempt in 1..5 {
        assert_eq!(
            plan.jitter(NodeId(1), 7, attempt),
            plan.jitter(NodeId(1), 7, attempt),
            "jitter is replayable"
        );
    }
}

/// The PR-5 acceptance criterion, pinned at the core level: a seeded
/// chaos schedule (same trace, same `FaultPlan`) must reproduce its
/// entire `SchedReport` — fault log, retry/backoff accounting,
/// quarantine events, per-job outcomes — bit for bit.
#[test]
fn chaos_schedules_reproduce_bit_identically() {
    use northup::FaultPlan;
    use northup_sched::{JobScheduler, JobSpec, JobWork, Reservation, SchedulerConfig};

    let run = || {
        let tree = presets::asymmetric_fig2();
        let mut sched = JobScheduler::new(
            tree,
            SchedulerConfig {
                fault_plan: Some(
                    FaultPlan::new(0xC0FFEE)
                        .transient_rate(4_000)
                        .persistent_rate(300),
                ),
                quarantine_after: 2,
                ..SchedulerConfig::default()
            },
        );
        for i in 0..8 {
            sched.submit(JobSpec::new(
                format!("chaos-{i}"),
                Reservation::new(),
                JobWork::new(4)
                    .read(16 << 20)
                    .xfer(16 << 20)
                    .compute(SimDur::from_millis(1))
                    .write(4 << 20),
            ));
        }
        sched.run().expect("chaos run")
    };
    let a = run();
    let b = run();
    assert!(a.all_terminal());
    assert!(!a.fault_log.is_empty(), "the plan must inject something");
    // The whole report, including every log and float, via Debug: any
    // nondeterminism anywhere in the fault path shows up here.
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}
