//! The recursive execution context (paper §III-C, Listing 3).
//!
//! A Northup application is one recursive function over a [`Ctx`]:
//!
//! ```
//! use northup::{Ctx, ExecMode, Runtime, presets};
//! use northup_hw::catalog;
//!
//! fn myfunction(ctx: &Ctx) {
//!     if ctx.level() == ctx.max_level() {
//!         // compute_task(): launch the kernel on the attached processor
//!     } else {
//!         for chunk in 0..4 {
//!             // setup_buffer(); data_down();
//!             ctx.spawn(0, |child| myfunction(child)); // northup_spawn
//!             // data_up();
//!         }
//!         let _ = chunk;
//!     }
//! }
//! # fn chunk() {}
//!
//! let rt = Runtime::new(
//!     presets::apu_two_level(catalog::ssd_hyperx_predator()),
//!     ExecMode::Real,
//! ).unwrap();
//! myfunction(&rt.root_ctx());
//! ```
//!
//! The context answers the paper's queries (`get_cur_treenode`,
//! `get_level`, `get_max_treelevel`, `get_device`) and provides the
//! node-relative data movement sugar. Recursion depth equals the number of
//! memory levels, so the paper's stack-overflow caveat is moot by
//! construction.

use crate::data::BufferHandle;
use crate::error::Result;
use crate::runtime::Runtime;
use crate::topology::{NodeId, ProcKind, ProcessorDesc};
use northup_sim::Served;

/// Execution context at one tree node during the recursion.
pub struct Ctx<'rt> {
    rt: &'rt Runtime,
    node: NodeId,
}

impl Runtime {
    /// Start the recursion at the tree root (the slowest storage, level 0).
    pub fn root_ctx(&self) -> Ctx<'_> {
        Ctx {
            rt: self,
            node: self.tree().root(),
        }
    }

    /// A context pinned at an arbitrary node (for tests and schedulers).
    pub fn ctx_at(&self, node: NodeId) -> Ctx<'_> {
        Ctx { rt: self, node }
    }
}

impl<'rt> Ctx<'rt> {
    /// The runtime this context belongs to.
    pub fn rt(&self) -> &'rt Runtime {
        self.rt
    }

    /// The paper's `get_cur_treenode()`.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The paper's `get_level()`.
    pub fn level(&self) -> usize {
        self.rt.tree().level(self.node)
    }

    /// The paper's `get_max_treelevel()`.
    pub fn max_level(&self) -> usize {
        self.rt.tree().max_level()
    }

    /// Whether computation happens here.
    pub fn is_leaf(&self) -> bool {
        self.rt.tree().node(self.node).is_leaf()
    }

    /// The paper's `get_children_list()`.
    pub fn children(&self) -> &'rt [NodeId] {
        self.rt.tree().children(self.node)
    }

    /// The paper's `get_parent()`.
    pub fn parent(&self) -> Option<NodeId> {
        self.rt.tree().parent(self.node)
    }

    /// Processors attached here (empty on pure memory nodes).
    pub fn procs(&self) -> &'rt [ProcessorDesc] {
        &self.rt.tree().node(self.node).procs
    }

    /// The paper's `get_device()`: the primary attached processor kind.
    pub fn device(&self) -> Option<ProcKind> {
        self.procs().first().map(|p| p.kind)
    }

    /// Whether a processor of `kind` is attached here.
    pub fn has_device(&self, kind: ProcKind) -> bool {
        self.procs().iter().any(|p| p.kind == kind)
    }

    /// The paper's `northup_spawn`: recurse into child `index`, tracking the
    /// task in this node's work-queue statistics. Returns the closure's
    /// result.
    ///
    /// # Panics
    /// Panics if `index` is out of range (children come from
    /// [`children`](Self::children)).
    pub fn spawn<R>(&self, index: usize, f: impl FnOnce(&Ctx<'rt>) -> R) -> R {
        let child = self.children()[index];
        self.rt.note_spawn(self.node);
        let ctx = Ctx {
            rt: self.rt,
            node: child,
        };
        let out = f(&ctx);
        self.rt.note_retire(self.node);
        out
    }

    /// Allocate a buffer on this node (paper: `alloc(size, node)` inside
    /// `setup_buffer`).
    pub fn alloc(&self, size: u64) -> Result<BufferHandle> {
        self.rt.alloc(size, self.node)
    }

    /// Allocate a buffer on child `index`.
    pub fn alloc_on_child(&self, index: usize, size: u64) -> Result<BufferHandle> {
        self.rt.alloc(size, self.children()[index])
    }

    /// `data_down`: move from a buffer on this node into a buffer on a child.
    pub fn move_down(
        &self,
        dst: BufferHandle,
        dst_off: u64,
        src: BufferHandle,
        src_off: u64,
        len: u64,
    ) -> Result<Served> {
        self.rt
            .move_data_down(self.node, dst, dst_off, src, src_off, len)
    }

    /// `data_up`: move from a buffer on this node into a buffer on the parent.
    pub fn move_up(
        &self,
        dst: BufferHandle,
        dst_off: u64,
        src: BufferHandle,
        src_off: u64,
        len: u64,
    ) -> Result<Served> {
        self.rt
            .move_data_up(self.node, dst, dst_off, src, src_off, len)
    }

    /// Launch a leaf computation here (see [`Runtime::charge_compute`]).
    pub fn compute(
        &self,
        kind: ProcKind,
        dur: northup_sim::SimDur,
        reads: &[BufferHandle],
        writes: &[BufferHandle],
        label: &str,
    ) -> Result<Served> {
        self.rt
            .charge_compute(self.node, kind, dur, reads, writes, label)
    }

    /// Remaining capacity here (drives blocking-size decisions).
    pub fn available(&self) -> u64 {
        self.rt.available(self.node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::runtime::ExecMode;
    use northup_hw::catalog;

    fn rt3() -> Runtime {
        Runtime::new(
            presets::discrete_gpu_three_level(catalog::ssd_hyperx_predator()),
            ExecMode::Real,
        )
        .unwrap()
    }

    #[test]
    fn root_ctx_is_level_zero() {
        let rt = rt3();
        let ctx = rt.root_ctx();
        assert_eq!(ctx.level(), 0);
        assert_eq!(ctx.max_level(), 2);
        assert!(!ctx.is_leaf());
        assert_eq!(ctx.parent(), None);
    }

    #[test]
    fn recursion_reaches_the_leaf() {
        let rt = rt3();
        // Walk down the single spine.
        let depth = {
            fn descend(ctx: &Ctx, depth: usize) -> usize {
                if ctx.is_leaf() {
                    assert_eq!(ctx.level(), ctx.max_level());
                    assert_eq!(ctx.device(), Some(ProcKind::Gpu));
                    depth
                } else {
                    ctx.spawn(0, |child| descend(child, depth + 1))
                }
            }
            descend(&rt.root_ctx(), 0)
        };
        assert_eq!(depth, 2);
    }

    #[test]
    fn spawn_counts_tasks_in_work_queues() {
        let rt = rt3();
        let ctx = rt.root_ctx();
        for _ in 0..5 {
            ctx.spawn(0, |child| {
                assert_eq!(child.level(), 1);
            });
        }
        assert_eq!(rt.tasks_spawned(ctx.node()), 5);
        assert_eq!(rt.tasks_active(ctx.node()), 0);
    }

    #[test]
    fn active_count_tracks_nesting() {
        let rt = rt3();
        let ctx = rt.root_ctx();
        ctx.spawn(0, |mid| {
            assert_eq!(rt.tasks_active(ctx.node()), 1);
            mid.spawn(0, |leaf| {
                assert_eq!(rt.tasks_active(mid.node()), 1);
                assert!(leaf.is_leaf());
            });
            assert_eq!(rt.tasks_active(mid.node()), 0);
        });
        assert_eq!(rt.tasks_active(ctx.node()), 0);
    }

    #[test]
    fn node_relative_moves_work_through_ctx() {
        let rt = rt3();
        let root = rt.root_ctx();
        let src = root.alloc(64).unwrap();
        rt.write_slice(src, 0, &[3u8; 64]).unwrap();
        root.spawn(0, |dram| {
            let stage = dram.alloc(64).unwrap();
            // data_down from the parent's perspective is move_down on root,
            // but from the child we express it as: parent's buffer -> mine.
            rt.move_data(stage, 0, src, 0, 64).unwrap();
            dram.spawn(0, |gpu| {
                let dev = gpu.alloc(64).unwrap();
                rt.move_data(dev, 0, stage, 0, 64).unwrap();
                let mut out = [0u8; 64];
                rt.read_slice(dev, 0, &mut out).unwrap();
                assert_eq!(out, [3u8; 64]);
                // And back up.
                gpu.move_up(stage, 0, dev, 0, 64).unwrap();
            });
        });
    }

    #[test]
    fn apu_leaf_has_both_devices() {
        let rt = Runtime::new(
            presets::apu_two_level(catalog::ssd_hyperx_predator()),
            ExecMode::Real,
        )
        .unwrap();
        let leaf = rt.ctx_at(NodeId(1));
        assert!(leaf.has_device(ProcKind::Gpu));
        assert!(leaf.has_device(ProcKind::Cpu));
        assert_eq!(leaf.device(), Some(ProcKind::Gpu));
    }
}
