//! The Northup topological tree (paper §III-B, Listing 1, Fig. 2).
//!
//! The whole system is abstracted as an asymmetric, heterogeneous tree:
//! inner nodes and the root are memories/storages, leaves are the
//! software/hardware management transition points with processors attached.
//! Levels are numbered the paper's way: the slowest storage (root) is
//! level 0 and faster memories get larger numbers.
//!
//! Each node carries the [`DeviceSpec`] of its memory, the [`LinkSpec`] of
//! the edge to its parent, and (for leaves — plus the special CPU-on-inner-
//! node case of a discrete-GPU system) attached [`ProcessorDesc`]s. The
//! query API mirrors the paper's: `fetch_node_type`, `get_parent`,
//! `get_children_list`, `get_level`, `get_max_treelevel`.

use northup_hw::{DeviceSpec, LinkSpec, StorageClass};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a tree node ("each tree node is associated with a unique
/// identifier").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Processor technology attached to a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcKind {
    /// General-purpose CPU cores.
    Cpu,
    /// GPU (integrated or discrete).
    Gpu,
    /// FPGA / other accelerator.
    Fpga,
}

impl fmt::Display for ProcKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ProcKind::Cpu => "cpu",
            ProcKind::Gpu => "gpu",
            ProcKind::Fpga => "fpga",
        })
    }
}

/// A processor attached to a tree node (the paper's `processor_t`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorDesc {
    /// Technology.
    pub kind: ProcKind,
    /// Name for reports ("apu-gpu").
    pub name: String,
    /// Last-level (hardware-managed) cache size in bytes — the paper keeps
    /// `LLC_size` in the leaf node structure.
    pub llc_bytes: u64,
}

impl ProcessorDesc {
    /// Convenience constructor.
    pub fn new(kind: ProcKind, name: impl Into<String>, llc_bytes: u64) -> Self {
        ProcessorDesc {
            kind,
            name: name.into(),
            llc_bytes,
        }
    }
}

/// One tree node (the paper's `tree_node_t`, Listing 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Unique id.
    pub id: NodeId,
    /// Memory level: 0 at the root (slowest), increasing downward.
    pub level: usize,
    /// Parent node, `None` for the root.
    pub parent: Option<NodeId>,
    /// Children, in insertion order.
    pub children: Vec<NodeId>,
    /// The memory/storage device at this node.
    pub mem: DeviceSpec,
    /// Link to the parent (None for the root).
    pub link: Option<LinkSpec>,
    /// Attached processors. Usually only on leaves; a CPU may attach to a
    /// non-leaf node in a CPU + discrete GPU system (§III-B).
    pub procs: Vec<ProcessorDesc>,
}

impl Node {
    /// True when the node has no children (computation happens here).
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// The topological tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<Node>,
}

/// Errors from tree construction / queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Node id out of range.
    UnknownNode(NodeId),
    /// Attempted to build an empty tree.
    Empty,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown tree node {n}"),
            TopologyError::Empty => write!(f, "tree has no nodes"),
        }
    }
}

impl std::error::Error for TopologyError {}

impl Tree {
    /// The root node id (always `n0`, level 0 — the slowest storage).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Borrow a node.
    ///
    /// # Panics
    /// Panics on an unknown id (ids come from this tree, so an unknown id is
    /// a caller bug).
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// Checked lookup.
    pub fn try_node(&self, id: NodeId) -> Result<&Node, TopologyError> {
        self.nodes.get(id.0).ok_or(TopologyError::UnknownNode(id))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Trees always have a root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All nodes, id order.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// All leaf nodes, id order.
    pub fn leaves(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.is_leaf())
    }

    /// The lowest-id leaf. Every well-formed tree has at least one
    /// (a childless root is its own leaf), so this only errors on a
    /// tree constructed with no nodes.
    pub fn first_leaf(&self) -> Result<&Node, TopologyError> {
        self.leaves().next().ok_or(TopologyError::Empty)
    }

    /// The paper's `fetch_node_type()`: the storage class driving data-
    /// movement dispatch.
    pub fn storage_class(&self, id: NodeId) -> StorageClass {
        self.node(id).mem.class
    }

    /// The paper's `get_parent()`.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// The paper's `get_children_list()`.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// The paper's `get_level()`.
    pub fn level(&self, id: NodeId) -> usize {
        self.node(id).level
    }

    /// The paper's `get_max_treelevel()`: the deepest level present.
    pub fn max_level(&self) -> usize {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0)
    }

    /// Whether `a` and `b` share an edge (data moves along tree edges).
    pub fn adjacent(&self, a: NodeId, b: NodeId) -> bool {
        self.parent(a) == Some(b) || self.parent(b) == Some(a)
    }

    /// The link spec of the edge between two adjacent nodes.
    pub fn edge_link(&self, a: NodeId, b: NodeId) -> Option<&LinkSpec> {
        if self.parent(a) == Some(b) {
            self.node(a).link.as_ref()
        } else if self.parent(b) == Some(a) {
            self.node(b).link.as_ref()
        } else {
            None
        }
    }

    /// Render as an ASCII tree (what "Northup can output the topology"
    /// looks like here).
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        self.render_node(self.root(), "", true, &mut out);
        out
    }

    fn render_node(&self, id: NodeId, prefix: &str, last: bool, out: &mut String) {
        let n = self.node(id);
        let branch = if prefix.is_empty() {
            ""
        } else if last {
            "`- "
        } else {
            "|- "
        };
        let procs = if n.procs.is_empty() {
            String::new()
        } else {
            let names: Vec<String> = n.procs.iter().map(|p| format!("[{}]", p.kind)).collect();
            format!(" {}", names.join(""))
        };
        out.push_str(&format!(
            "{prefix}{branch}{} L{} {} ({}, {:.1} GiB){}\n",
            n.id,
            n.level,
            n.mem.name,
            n.mem.class,
            n.mem.capacity as f64 / (1u64 << 30) as f64,
            procs
        ));
        let child_prefix = if prefix.is_empty() {
            String::new()
        } else {
            format!("{prefix}{}", if last { "   " } else { "|  " })
        };
        let k = n.children.len();
        for (i, &c) in n.children.iter().enumerate() {
            self.render_node(c, &child_prefix, i + 1 == k, out);
        }
    }

    /// Render as Graphviz DOT.
    pub fn render_dot(&self) -> String {
        let mut out = String::from("digraph northup {\n  rankdir=TB;\n");
        for n in &self.nodes {
            let shape = if n.is_leaf() { "ellipse" } else { "circle" };
            out.push_str(&format!(
                "  {} [label=\"{}\\nL{} {}\" shape={shape}];\n",
                n.id.0, n.mem.name, n.level, n.mem.class
            ));
            for p in &n.procs {
                out.push_str(&format!(
                    "  p{}_{} [label=\"{}\" shape=box];\n  {} -> p{}_{};\n",
                    n.id.0, p.name, p.name, n.id.0, n.id.0, p.name
                ));
            }
        }
        for n in &self.nodes {
            for &c in &n.children {
                out.push_str(&format!("  {} -> {};\n", n.id.0, c.0));
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Incremental tree builder. The runtime normally constructs the tree "at
/// program initialization" (§III-B) from one of the presets; the builder is
/// the escape hatch for custom machines.
#[derive(Debug, Clone)]
pub struct TreeBuilder {
    nodes: Vec<Node>,
}

impl TreeBuilder {
    /// Start a tree with the given root memory (level 0, slowest storage).
    pub fn new(root_mem: DeviceSpec) -> Self {
        TreeBuilder {
            nodes: vec![Node {
                id: NodeId(0),
                level: 0,
                parent: None,
                children: Vec::new(),
                mem: root_mem,
                link: None,
                procs: Vec::new(),
            }],
        }
    }

    /// Add a child memory under `parent`, connected by `link`. Returns the
    /// new node's id.
    ///
    /// # Panics
    /// Panics on an unknown parent (builder ids come from this builder).
    pub fn add_child(&mut self, parent: NodeId, mem: DeviceSpec, link: LinkSpec) -> NodeId {
        assert!(parent.0 < self.nodes.len(), "unknown parent {parent}");
        let id = NodeId(self.nodes.len());
        let level = self.nodes[parent.0].level + 1;
        self.nodes.push(Node {
            id,
            level,
            parent: Some(parent),
            children: Vec::new(),
            mem,
            link: Some(link),
            procs: Vec::new(),
        });
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Attach a processor to a node.
    ///
    /// # Panics
    /// Panics on an unknown node.
    pub fn attach_processor(&mut self, node: NodeId, proc_: ProcessorDesc) -> &mut Self {
        assert!(node.0 < self.nodes.len(), "unknown node {node}");
        self.nodes[node.0].procs.push(proc_);
        self
    }

    /// Finish building.
    pub fn build(self) -> Tree {
        Tree { nodes: self.nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use northup_hw::catalog;

    fn sample_tree() -> Tree {
        let mut b = TreeBuilder::new(catalog::ssd_hyperx_predator());
        let dram = b.add_child(
            NodeId(0),
            catalog::dram_staging_2gb(),
            catalog::dram_dma_link(),
        );
        let gpu = b.add_child(dram, catalog::gpu_devmem_4gb(), catalog::pcie3_x16());
        b.attach_processor(gpu, ProcessorDesc::new(ProcKind::Gpu, "gpu", 1 << 20));
        b.attach_processor(dram, ProcessorDesc::new(ProcKind::Cpu, "cpu", 4 << 20));
        b.build()
    }

    #[test]
    fn levels_count_from_slowest_storage() {
        let t = sample_tree();
        assert_eq!(t.level(t.root()), 0);
        assert_eq!(t.level(NodeId(1)), 1);
        assert_eq!(t.level(NodeId(2)), 2);
        assert_eq!(t.max_level(), 2);
    }

    #[test]
    fn parent_child_queries() {
        let t = sample_tree();
        assert_eq!(t.parent(t.root()), None);
        assert_eq!(t.parent(NodeId(1)), Some(NodeId(0)));
        assert_eq!(t.children(NodeId(0)), &[NodeId(1)]);
        assert_eq!(t.children(NodeId(2)), &[]);
        assert!(t.node(NodeId(2)).is_leaf());
        assert!(!t.node(NodeId(1)).is_leaf());
    }

    #[test]
    fn storage_classes_drive_dispatch() {
        let t = sample_tree();
        assert_eq!(t.storage_class(NodeId(0)), StorageClass::File);
        assert_eq!(t.storage_class(NodeId(1)), StorageClass::Memory);
        assert_eq!(t.storage_class(NodeId(2)), StorageClass::Device);
    }

    #[test]
    fn adjacency_and_edge_links() {
        let t = sample_tree();
        assert!(t.adjacent(NodeId(0), NodeId(1)));
        assert!(t.adjacent(NodeId(2), NodeId(1)));
        assert!(!t.adjacent(NodeId(0), NodeId(2)));
        assert_eq!(t.edge_link(NodeId(1), NodeId(2)).unwrap().name, "pcie3-x16");
        assert!(t.edge_link(NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn cpu_on_inner_node_is_allowed() {
        // §III-B: "the CPU can attach to a non-leaf node in a CPU + discrete
        // GPU system".
        let t = sample_tree();
        let inner = t.node(NodeId(1));
        assert!(!inner.is_leaf());
        assert_eq!(inner.procs[0].kind, ProcKind::Cpu);
    }

    #[test]
    fn asymmetric_branches() {
        let mut b = TreeBuilder::new(catalog::hdd_wd5000());
        let a = b.add_child(
            NodeId(0),
            catalog::dram_staging_2gb(),
            catalog::dram_dma_link(),
        );
        let _leaf1 = b.add_child(a, catalog::gpu_devmem_4gb(), catalog::pcie3_x16());
        let _leaf2 = b.add_child(a, catalog::stacked_dram_4gb(), catalog::dram_dma_link());
        let bnode = b.add_child(NodeId(0), catalog::dram_16gb(), catalog::dram_dma_link());
        let t = b.build();
        assert_eq!(t.children(NodeId(0)).len(), 2);
        assert_eq!(t.children(a).len(), 2);
        assert!(t.node(bnode).is_leaf());
        assert_eq!(t.leaves().count(), 3);
        assert_eq!(t.max_level(), 2);
    }

    #[test]
    fn ascii_render_mentions_every_node() {
        let t = sample_tree();
        let s = t.render_ascii();
        for n in t.nodes() {
            assert!(s.contains(&n.mem.name), "missing {} in:\n{s}", n.mem.name);
        }
        assert!(s.contains("[gpu]"));
    }

    #[test]
    fn dot_render_is_wellformed() {
        let s = sample_tree().render_dot();
        assert!(s.starts_with("digraph"));
        assert!(s.contains("0 -> 1;"));
        assert!(s.contains("1 -> 2;"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn try_node_checks_range() {
        let t = sample_tree();
        assert!(t.try_node(NodeId(99)).is_err());
        assert!(t.try_node(NodeId(1)).is_ok());
    }
}
