//! Automatic blocking-size selection (paper §III-B / §VI).
//!
//! The paper chooses its blocking sizes "manually ... through
//! experimentation" (§IV-A) but points at the mechanism for doing better:
//! "by examining the capacity and usage, a program can decide the blocking
//! size" (§III-B), and the §VI discussion expects a higher-level layer to
//! derive the decomposition. This module is that layer: given the tree and
//! a per-level working-set model, it picks the largest candidate block per
//! level that fits the level's capacity with headroom.
//!
//! The planner reproduces the paper's manual choices: on the 2 GB staging
//! DRAM it selects exactly the 4k x 4k GEMM blocking and the 8k x 8k
//! HotSpot blocking the authors tuned by hand (asserted in the tests).

use crate::error::{NorthupError, Result};
use crate::topology::{NodeId, Tree};
use serde::{Deserialize, Serialize};

/// A chosen block dimension per level below the root, outermost first.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockPlan {
    /// Block dimension per chain level below the root.
    pub per_level: Vec<usize>,
}

impl BlockPlan {
    /// The outermost (staging-level) block dimension.
    pub fn staging_block(&self) -> usize {
        self.per_level[0]
    }
}

/// Fraction of a node's capacity the planner is willing to commit
/// (leaves room for runtime metadata and alignment, like a human tuner).
pub const DEFAULT_HEADROOM: f64 = 0.9;

/// Plan block sizes down the chain below the root.
///
/// ```
/// use northup::{plan_blocks, pow2_candidates, presets, DEFAULT_HEADROOM};
/// use northup_hw::catalog;
///
/// // The paper's machine and GEMM working-set model: the planner derives
/// // the authors' hand-tuned 4k x 4k blocking.
/// let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
/// let n = 16 * 1024u64;
/// let plan = plan_blocks(&tree, &pow2_candidates(512, 16 * 1024), DEFAULT_HEADROOM,
///     |level, b| {
///         let b = b as u64;
///         if level == 0 { 2 * b * n * 4 + 2 * (n * b + b * b) * 4 }
///         else { (2 * n * b + b * b) * 4 }
///     }).unwrap();
/// assert_eq!(plan.staging_block(), 4 * 1024);
/// ```
///
/// * `candidates` — allowed block dimensions, ascending (e.g. powers of
///   two). The planner picks, per level, the largest candidate whose
///   `footprint(level, block)` fits within `headroom` of the level's
///   capacity; deeper levels additionally never exceed their parent's
///   chosen block.
/// * `footprint(level, block)` — bytes the application needs resident on
///   that level when using `block` (staging rings, kept shards, halos...).
///
/// Errors with [`NorthupError::NoProcessor`]-free topology issues aside,
/// planning fails if even the smallest candidate does not fit somewhere.
pub fn plan_blocks(
    tree: &Tree,
    candidates: &[usize],
    headroom: f64,
    footprint: impl Fn(usize, usize) -> u64,
) -> Result<BlockPlan> {
    assert!(!candidates.is_empty(), "need at least one candidate block");
    assert!(
        candidates.windows(2).all(|w| w[0] < w[1]),
        "candidates must be ascending"
    );
    assert!((0.0..=1.0).contains(&headroom), "headroom in (0, 1]");

    // The compute chain below the root.
    let mut chain: Vec<NodeId> = Vec::new();
    let mut cur = tree.root();
    while let Some(&child) = tree.children(cur).first() {
        chain.push(child);
        cur = child;
    }
    if chain.is_empty() {
        return Err(NorthupError::Topology(
            crate::topology::TopologyError::Empty,
        ));
    }

    let mut per_level = Vec::with_capacity(chain.len());
    let mut ceiling = usize::MAX;
    for (level, &node) in chain.iter().enumerate() {
        let budget = (tree.node(node).mem.capacity as f64 * headroom) as u64;
        let chosen = candidates
            .iter()
            .rev()
            .copied()
            .find(|&b| b <= ceiling && footprint(level, b) <= budget);
        match chosen {
            Some(b) => {
                per_level.push(b);
                ceiling = b;
            }
            None => {
                return Err(NorthupError::Hw(northup_hw::HwError::OutOfCapacity {
                    device: tree.node(node).mem.name.clone(),
                    requested: footprint(level, candidates[0]),
                    available: budget,
                }))
            }
        }
    }
    Ok(BlockPlan { per_level })
}

/// Standard power-of-two candidate dims from `min` to `max` inclusive.
pub fn pow2_candidates(min: usize, max: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut b = min.next_power_of_two().max(1);
    while b <= max {
        out.push(b);
        b *= 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use northup_hw::catalog;

    /// The GEMM staging working set of `crates/apps/src/matmul.rs`: the
    /// resident A row shard + `ring` (B shard, C tile) pairs + the second
    /// A ring slot used for row-shard prefetch.
    fn gemm_footprint(n: usize, ring: usize) -> impl Fn(usize, usize) -> u64 {
        move |level, b| {
            let (b, n, ring) = (b as u64, n as u64, ring as u64);
            if level == 0 {
                2 * b * n * 4 + ring * (n * b + b * b) * 4
            } else {
                // Deeper levels hold one (A, B, C) shard set.
                (b * n + n * b + b * b) * 4
            }
        }
    }

    /// The HotSpot staging working set: `ring` (input+power) halo regions
    /// plus `ring` output cores.
    fn hotspot_footprint(halo: usize, ring: usize) -> impl Fn(usize, usize) -> u64 {
        move |_level, b| {
            let region = ((b + 2 * halo) * (b + 2 * halo) * 4) as u64;
            let core = (b * b * 4) as u64;
            ring as u64 * (2 * region + core)
        }
    }

    #[test]
    fn planner_derives_the_papers_gemm_blocking() {
        // 16k matrices on the 2 GB staging DRAM: the paper hand-picked 4k.
        let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
        let plan = plan_blocks(
            &tree,
            &pow2_candidates(512, 16 * 1024),
            DEFAULT_HEADROOM,
            gemm_footprint(16 * 1024, 2),
        )
        .unwrap();
        assert_eq!(plan.staging_block(), 4 * 1024, "{plan:?}");
    }

    #[test]
    fn planner_derives_the_papers_hotspot_blocking() {
        // 16k grid, 64-deep halo, double buffering: the paper hand-picked 8k.
        let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
        let plan = plan_blocks(
            &tree,
            &pow2_candidates(512, 16 * 1024),
            DEFAULT_HEADROOM,
            hotspot_footprint(64, 2),
        )
        .unwrap();
        assert_eq!(plan.staging_block(), 8 * 1024, "{plan:?}");
    }

    #[test]
    fn deeper_levels_never_exceed_their_parent() {
        let tree = presets::exascale_node();
        let plan = plan_blocks(
            &tree,
            &pow2_candidates(256, 32 * 1024),
            DEFAULT_HEADROOM,
            gemm_footprint(32 * 1024, 2),
        )
        .unwrap();
        assert_eq!(plan.per_level.len(), 3, "DRAM, HBM, GPU memory");
        for w in plan.per_level.windows(2) {
            assert!(w[1] <= w[0], "{plan:?}");
        }
    }

    #[test]
    fn impossible_fits_are_reported_not_panicked() {
        let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
        // Demand an absurd working set per block.
        let err = plan_blocks(&tree, &[1024], DEFAULT_HEADROOM, |_, _| u64::MAX).unwrap_err();
        assert!(matches!(err, NorthupError::Hw(_)), "{err}");
    }

    #[test]
    fn bigger_memory_allows_bigger_blocks() {
        let small = presets::apu_two_level(catalog::ssd_hyperx_predator());
        let mut b = crate::topology::TreeBuilder::new(catalog::ssd_hyperx_predator());
        let dram = b.add_child(NodeId(0), catalog::dram_16gb(), catalog::dram_dma_link());
        b.attach_processor(
            dram,
            crate::topology::ProcessorDesc::new(crate::topology::ProcKind::Gpu, "apu-gpu", 1 << 20),
        );
        let big = b.build();

        let cands = pow2_candidates(512, 16 * 1024);
        let f = gemm_footprint(16 * 1024, 2);
        let p_small = plan_blocks(&small, &cands, DEFAULT_HEADROOM, &f).unwrap();
        let p_big = plan_blocks(&big, &cands, DEFAULT_HEADROOM, &f).unwrap();
        assert!(p_big.staging_block() > p_small.staging_block());
    }

    #[test]
    fn pow2_candidates_are_well_formed() {
        assert_eq!(pow2_candidates(512, 4096), vec![512, 1024, 2048, 4096]);
        assert_eq!(pow2_candidates(1000, 4096), vec![1024, 2048, 4096]);
        assert!(pow2_candidates(8192, 4096).is_empty());
    }
}
