//! Unified error type for the Northup runtime.

use crate::data::BufferHandle;
use crate::topology::{NodeId, TopologyError};
use northup_hw::HwError;
use std::fmt;

/// Errors surfaced by the Northup runtime and data-management API.
#[derive(Debug)]
pub enum NorthupError {
    /// Backend (capacity / bounds / OS I/O) failure.
    Hw(HwError),
    /// Topology lookup failure.
    Topology(TopologyError),
    /// The buffer handle is unknown (never allocated or already released).
    UnknownBuffer(BufferHandle),
    /// Data movement requested between non-adjacent tree nodes — Northup
    /// moves data along tree edges (§III-A).
    NotAdjacent(NodeId, NodeId),
    /// A `move_data_down`/`move_data_up` argument lives on the wrong node.
    WrongNode {
        /// The buffer's actual node.
        actual: NodeId,
        /// Where the operation required it to live.
        expected: NodeId,
    },
    /// A leaf operation was issued on a node without the requested processor.
    NoProcessor(NodeId),
    /// An access range does not fit the buffer.
    BadRange {
        /// Offending buffer.
        buffer: BufferHandle,
        /// Access offset.
        offset: u64,
        /// Access length.
        len: u64,
        /// Buffer size.
        size: u64,
    },
    /// An allocation would overrun the installed capacity lease (the job's
    /// admitted reservation on that node — see `northup-sched`).
    LeaseExceeded {
        /// The node whose reservation ran out.
        node: NodeId,
        /// Bytes the allocation asked for.
        requested: u64,
        /// Bytes still unused in the lease on that node.
        remaining: u64,
    },
}

impl fmt::Display for NorthupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NorthupError::Hw(e) => write!(f, "hardware backend: {e}"),
            NorthupError::Topology(e) => write!(f, "topology: {e}"),
            NorthupError::UnknownBuffer(b) => write!(f, "unknown buffer {b:?}"),
            NorthupError::NotAdjacent(a, b) => {
                write!(f, "nodes {a} and {b} do not share a tree edge")
            }
            NorthupError::WrongNode { actual, expected } => {
                write!(f, "buffer lives on {actual}, operation requires {expected}")
            }
            NorthupError::NoProcessor(n) => write!(f, "node {n} has no matching processor"),
            NorthupError::BadRange {
                buffer,
                offset,
                len,
                size,
            } => write!(
                f,
                "range [{offset}, {offset}+{len}) out of bounds for buffer {buffer:?} of {size} B"
            ),
            NorthupError::LeaseExceeded {
                node,
                requested,
                remaining,
            } => write!(
                f,
                "capacity lease exhausted on {node}: requested {requested} B, {remaining} B left"
            ),
        }
    }
}

impl std::error::Error for NorthupError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NorthupError::Hw(e) => Some(e),
            NorthupError::Topology(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HwError> for NorthupError {
    fn from(e: HwError) -> Self {
        NorthupError::Hw(e)
    }
}

impl From<TopologyError> for NorthupError {
    fn from(e: TopologyError) -> Self {
        NorthupError::Topology(e)
    }
}

/// Result alias for runtime operations.
pub type Result<T> = std::result::Result<T, NorthupError>;
