//! # northup — divide-and-conquer programming for heterogeneous memories
//! and processors
//!
//! This crate is the paper's primary contribution, reimplemented in Rust:
//!
//! * [`topology`] — the asymmetric, heterogeneous topological tree
//!   (Listing 1, Fig. 2) with the paper's query API and presets for every
//!   evaluated machine ([`presets`]).
//! * [`data`] — the unified data-management interface (Table I): opaque
//!   [`BufferHandle`]s, `alloc`/`release`, and `move_data` variants that
//!   internally dispatch to file I/O, memcpy, or device transfers based on
//!   the storage classes of the tree nodes involved (Listing 4).
//! * [`ctx`] — the recursive programming model (Listing 3):
//!   [`Runtime::root_ctx`] starts at the slowest storage; [`Ctx::spawn`] is
//!   `northup_spawn`; leaves launch kernels on their attached processors.
//! * [`runtime`] — execution modes (real bytes vs. paper-scale modeled),
//!   per-device virtual-time resources with dataflow dependencies (so
//!   compute/I-O overlap emerges as from the paper's multi-stage queues),
//!   breakdown profiling (Figs. 7/8), and work-queue statistics.
//! * [`fabric`] — the stage-chain IR (`ChunkChain`): one representation
//!   of a chunk's read→link→compute→link→write-back journey shared by the
//!   modeled co-simulation and real-thread execution backends, with
//!   checkpoint tokens for chunk-granular preemption.
//! * [`projection`] — the §V-D first-order faster-storage emulator (Fig. 9).
//! * [`transform`] — the §VI layout-transforming `move_data` extension.
//!
//! ## Quickstart
//!
//! ```
//! use northup::{presets, Ctx, ExecMode, ProcKind, Runtime};
//! use northup_hw::catalog;
//! use northup_sim::SimDur;
//!
//! // An APU machine: SSD root (level 0), 2 GB DRAM staging leaf (level 1).
//! let rt = Runtime::new(
//!     presets::apu_two_level(catalog::ssd_hyperx_predator()),
//!     ExecMode::Real,
//! ).unwrap();
//!
//! let root = rt.root_ctx();
//! let input = root.alloc(1024).unwrap();            // on the SSD
//! rt.write_slice(input, 0, &[1u8; 1024]).unwrap();  // preprocessing
//!
//! root.spawn(0, |leaf| {
//!     let stage = leaf.alloc(1024).unwrap();        // in DRAM
//!     rt.move_data(stage, 0, input, 0, 1024).unwrap();   // file read
//!     leaf.compute(ProcKind::Gpu, SimDur::from_millis(2),
//!                  &[stage], &[stage], "kernel").unwrap();
//!     leaf.move_up(input, 0, stage, 0, 1024).unwrap();   // file write
//! });
//!
//! let report = rt.report();
//! assert!(report.makespan() > SimDur::ZERO);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ctx;
pub mod dag;
pub mod data;
pub mod error;
pub mod fabric;
pub mod fault;
pub mod lease;
pub mod pipeline;
pub mod plan;
pub mod presets;
pub mod projection;
pub mod queues;
pub mod runtime;
pub mod topology;
pub mod transform;

pub use ctx::Ctx;
pub use dag::{DagNode, TaskDag};
pub use data::BufferHandle;
pub use error::{NorthupError, Result};
pub use fabric::{
    build_chain, ChainStage, Checkpoint, ChunkChain, ChunkWork, Fabric, FabricError, Stage,
    StageCost, StageRun,
};
pub use fault::{FaultKind, FaultPlan, RetryPolicy};
pub use lease::CapacityLease;
pub use pipeline::ChunkPipeline;
pub use plan::{plan_blocks, pow2_candidates, BlockPlan, DEFAULT_HEADROOM};
pub use projection::{project_run, project_sweep, Projection, FIG9_SWEEP};
pub use queues::{TaskId, TaskTag, WorkQueues};
pub use runtime::{ExecMode, RunReport, Runtime, SetupCosts};
pub use topology::{Node, NodeId, ProcKind, ProcessorDesc, TopologyError, Tree, TreeBuilder};
pub use transform::{Transform, TRANSFORM_BW};
