//! First-order faster-storage projection (paper §V-D, Fig. 9).
//!
//! The paper: "we develop an emulator capable of performing a first-order
//! projection by keeping track of read/writes issued by application I/Os
//! and considering read/write bandwidths of the storage. We also include
//! the I/O time into the overall runtime (the other components being
//! constant)."
//!
//! [`project_run`] reproduces that exactly: from a finished run's report it
//! takes the measured I/O busy time and total runtime, recomputes the I/O
//! time for a hypothetical (read, write) bandwidth pair from the recorded
//! byte counts, and forms `overall' = overall - io + io'`.
//!
//! The bench harness *also* regenerates Fig. 9 the stronger way — re-running
//! the full pipelined model with the faster device — and EXPERIMENTS.md
//! compares both.

use crate::runtime::RunReport;
use northup_hw::{BwPoint, IoTotals};
use northup_sim::{transfer_time, Category, SimDur};
use serde::{Deserialize, Serialize};

/// Outcome of projecting one run to one bandwidth point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Projection {
    /// The hypothetical device's read bandwidth (bytes/s).
    pub read_bw: f64,
    /// The hypothetical device's write bandwidth (bytes/s).
    pub write_bw: f64,
    /// Projected I/O time at this point.
    pub io_time: SimDur,
    /// Projected overall runtime (`overall - io_measured + io_projected`).
    pub overall: SimDur,
}

/// Project a finished run onto a hypothetical storage bandwidth point.
///
/// `device` selects which recorded device's bytes are re-timed (the
/// storage at the tree root in the paper's experiments).
pub fn project_run(report: &RunReport, device: &str, point: BwPoint) -> Projection {
    let totals = report
        .io
        .iter()
        .find(|(name, _)| name == device)
        .map(|(_, t)| *t)
        .unwrap_or_default();
    let io_measured = report.breakdown.get(Category::FileIo);
    let io_time = replay(totals, point);
    let overall = report.breakdown.makespan.saturating_sub(io_measured) + io_time;
    Projection {
        read_bw: point.read_bw,
        write_bw: point.write_bw,
        io_time,
        overall,
    }
}

fn replay(t: IoTotals, p: BwPoint) -> SimDur {
    transfer_time(t.bytes_read, p.read_bw, SimDur::ZERO)
        + p.read_latency * t.read_ops
        + transfer_time(t.bytes_written, p.write_bw, SimDur::ZERO)
        + p.write_latency * t.write_ops
}

/// The Fig. 9 sweep: entry SSD up to the fastest PCIe SSDs on the (2019)
/// market, as (read, write) MB/s.
pub const FIG9_SWEEP: [(u64, u64); 4] = [(1400, 600), (2000, 1000), (2800, 1600), (3500, 2100)];

/// Project a run across the whole Fig. 9 sweep.
pub fn project_sweep(report: &RunReport, device: &str) -> Vec<Projection> {
    FIG9_SWEEP
        .iter()
        .map(|&(r, w)| project_run(report, device, BwPoint::from_mb_s(r, w)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use northup_sim::{Breakdown, SimTime, Timeline};

    fn fake_report(io_busy_s: f64, total_s: f64, bytes_read: u64, bytes_written: u64) -> RunReport {
        let mut tl = Timeline::new();
        tl.record(
            SimTime::ZERO,
            SimTime::from_secs_f64(io_busy_s),
            Category::FileIo,
            "io",
        );
        tl.record(
            SimTime::ZERO,
            SimTime::from_secs_f64(total_s),
            Category::GpuCompute,
            "gpu",
        );
        let breakdown: Breakdown = tl.breakdown();
        RunReport {
            breakdown,
            io: vec![(
                "ssd".to_string(),
                IoTotals {
                    bytes_read,
                    bytes_written,
                    read_ops: 1,
                    write_ops: 1,
                },
            )],
            utilization: vec![],
        }
    }

    #[test]
    fn projection_at_measured_bandwidth_reproduces_io_time() {
        // 1400 MB read at 1400 MB/s = 1s I/O; measured io busy 1s.
        let rep = fake_report(1.0, 10.0, 1_400_000_000, 0);
        let p = project_run(&rep, "ssd", BwPoint::from_mb_s(1400, 600));
        assert!((p.io_time.as_secs_f64() - 1.0).abs() < 1e-6);
        assert!((p.overall.as_secs_f64() - 10.0).abs() < 1e-6);
    }

    #[test]
    fn faster_storage_shrinks_io_and_overall() {
        let rep = fake_report(2.0, 8.0, 1_400_000_000, 600_000_000);
        let sweep = project_sweep(&rep, "ssd");
        assert_eq!(sweep.len(), 4);
        for w in sweep.windows(2) {
            assert!(w[1].io_time < w[0].io_time, "I/O monotone");
            assert!(w[1].overall < w[0].overall, "overall monotone");
        }
        // Compute component (8 - 2 = 6s) is the floor.
        assert!(sweep.last().unwrap().overall.as_secs_f64() > 6.0);
    }

    #[test]
    fn unknown_device_projects_zero_io() {
        let rep = fake_report(1.0, 5.0, 1_000, 1_000);
        let p = project_run(&rep, "not-a-device", BwPoint::from_mb_s(3500, 2100));
        assert_eq!(p.io_time, SimDur::ZERO);
        // overall = 5 - 1 + 0 = 4.
        assert!((p.overall.as_secs_f64() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn fig9_sweep_ends_at_3500_2100() {
        assert_eq!(FIG9_SWEEP[0], (1400, 600));
        assert_eq!(FIG9_SWEEP[3], (3500, 2100));
    }
}
