//! The Northup runtime: tree + backends + virtual-time resources.
//!
//! A [`Runtime`] binds a [`Tree`] to storage backends (where bytes live) and
//! to `northup-sim` resources (when operations finish). Every data-management
//! call (see `data.rs`) both *performs* the operation on real bytes and
//! *schedules* it in virtual time with dataflow dependencies, so compute/IO
//! overlap emerges exactly as it would from the paper's multi-stage task
//! queues (§III-C) without wall-clock measurement.

use crate::dag::{DagRecorder, TaskDag};
use crate::data::BufInfo;
use crate::error::{NorthupError, Result};
use crate::topology::{NodeId, ProcKind, Tree};
use northup_hw::{
    FileBackend, HeapBackend, IoTracker, PhantomBackend, StorageBackend, StorageClass,
};
use northup_sim::{Breakdown, Category, Resource, SimDur, SimTime, Timeline};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How data operations execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Real bytes: heap buffers and real scratch files; kernels compute real
    /// results. Used by tests, examples and small-scale runs.
    Real,
    /// Capacity accounting only: buffers are phantom, byte movement is
    /// skipped, and only virtual time is charged. Used for paper-scale
    /// figure runs (a 32k x 32k float matrix is 4 GiB).
    Modeled,
}

/// Per-storage-class fixed costs of buffer setup/teardown (file open/close
/// plus metadata, malloc, clCreateBuffer/clReleaseMemObject). These feed
/// the "buffer setup" category of the paper's Figs. 7 and 8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SetupCosts {
    /// File allocation (open + create).
    pub file_alloc: SimDur,
    /// File release (close + unlink bookkeeping).
    pub file_release: SimDur,
    /// Host-memory allocation.
    pub mem_alloc: SimDur,
    /// Host-memory release.
    pub mem_release: SimDur,
    /// Device-buffer allocation.
    pub dev_alloc: SimDur,
    /// Device-buffer release.
    pub dev_release: SimDur,
}

impl Default for SetupCosts {
    fn default() -> Self {
        SetupCosts {
            file_alloc: SimDur::from_micros(300),
            file_release: SimDur::from_micros(100),
            mem_alloc: SimDur::from_micros(20),
            mem_release: SimDur::from_micros(5),
            dev_alloc: SimDur::from_micros(100),
            dev_release: SimDur::from_micros(50),
        }
    }
}

impl SetupCosts {
    /// Alloc cost for a storage class.
    pub fn alloc(&self, class: StorageClass) -> SimDur {
        match class {
            StorageClass::File => self.file_alloc,
            StorageClass::Memory => self.mem_alloc,
            StorageClass::Device => self.dev_alloc,
        }
    }

    /// Release cost for a storage class.
    pub fn release(&self, class: StorageClass) -> SimDur {
        match class {
            StorageClass::File => self.file_release,
            StorageClass::Memory => self.mem_release,
            StorageClass::Device => self.dev_release,
        }
    }
}

pub(crate) struct RtInner {
    pub backends: Vec<Box<dyn StorageBackend>>,
    /// Per-node device resource (serves this node's own reads/writes/copies).
    pub node_res: Vec<Resource>,
    /// Per-node resource of the edge to the parent (None at the root).
    pub link_res: Vec<Option<Resource>>,
    /// Per-node, per-attached-processor resources.
    pub proc_res: Vec<Vec<Resource>>,
    /// Live buffers by handle. Ordered so any schedule-visible iteration
    /// (diagnostics, teardown) is deterministic across runs.
    pub buffers: BTreeMap<u64, BufInfo>,
    pub next_handle: u64,
    pub timeline: Timeline,
    pub io: IoTracker,
    /// Per-node count of recursive tasks spawned through it (the work-queue
    /// bookkeeping of Listing 1).
    pub spawned: Vec<u64>,
    /// Per-node current recursion depth occupancy.
    pub active: Vec<u64>,
    /// Optional §III-C dependency-graph recorder.
    pub dag: Option<DagRecorder>,
    /// Optional capacity lease: the admitted reservation `alloc` draws from
    /// when this runtime executes one job of a multi-tenant schedule.
    pub lease: Option<std::sync::Arc<crate::lease::CapacityLease>>,
    /// Which lease each live buffer was charged to, so `release` credits
    /// the right accounting even if the installed lease changed since.
    pub charged: BTreeMap<u64, std::sync::Arc<crate::lease::CapacityLease>>,
}

impl RtInner {
    /// Record an operation into the DAG, if recording is enabled.
    pub(crate) fn dag_record(
        &mut self,
        label: &str,
        category: northup_sim::Category,
        duration: SimDur,
        reads: &[crate::data::BufferHandle],
        writes: &[crate::data::BufferHandle],
    ) {
        if let Some(dag) = self.dag.as_mut() {
            dag.record(label, category, duration, reads, writes);
        }
    }
}

/// Hook for substituting custom storage backends per node (fault
/// injection, instrumented devices, novel memories). Return `None` to use
/// the default backend for the node's class and execution mode.
pub type BackendFactory<'a> =
    dyn Fn(&crate::topology::Node) -> Option<Box<dyn StorageBackend>> + 'a;

/// The Northup runtime.
pub struct Runtime {
    tree: Tree,
    mode: ExecMode,
    setup: SetupCosts,
    pub(crate) inner: Mutex<RtInner>,
}

impl Runtime {
    /// Create a runtime over `tree` in the given execution mode.
    pub fn new(tree: Tree, mode: ExecMode) -> Result<Self> {
        Self::with_setup_costs(tree, mode, SetupCosts::default())
    }

    /// Create a runtime with custom buffer setup costs.
    pub fn with_setup_costs(tree: Tree, mode: ExecMode, setup: SetupCosts) -> Result<Self> {
        Self::with_custom_backends(tree, mode, setup, &|_| None)
    }

    /// Create a runtime substituting custom backends where `factory`
    /// returns one (an extension point for fault injection and novel
    /// device models).
    pub fn with_custom_backends(
        tree: Tree,
        mode: ExecMode,
        setup: SetupCosts,
        factory: &BackendFactory<'_>,
    ) -> Result<Self> {
        let mut backends: Vec<Box<dyn StorageBackend>> = Vec::with_capacity(tree.len());
        let mut node_res = Vec::with_capacity(tree.len());
        let mut link_res = Vec::with_capacity(tree.len());
        let mut proc_res = Vec::with_capacity(tree.len());
        for node in tree.nodes() {
            let spec = &node.mem;
            let backend: Box<dyn StorageBackend> = match factory(node) {
                Some(custom) => custom,
                None => match mode {
                    ExecMode::Modeled => Box::new(PhantomBackend::new(&spec.name, spec.capacity)),
                    ExecMode::Real => match spec.class {
                        StorageClass::File => Box::new(
                            FileBackend::new(&spec.name, spec.capacity)
                                .map_err(NorthupError::Hw)?,
                        ),
                        _ => Box::new(HeapBackend::new(&spec.name, spec.capacity)),
                    },
                },
            };
            backends.push(backend);
            node_res.push(Resource::new(&spec.name, spec.read_bw, SimDur::ZERO));
            link_res.push(
                node.link
                    .as_ref()
                    .map(|l| Resource::new(&l.name, l.bandwidth, l.latency)),
            );
            proc_res.push(
                node.procs
                    .iter()
                    .map(|p| Resource::new_compute(&p.name))
                    .collect(),
            );
        }
        let n = tree.len();
        Ok(Runtime {
            tree,
            mode,
            setup,
            inner: Mutex::new(RtInner {
                backends,
                node_res,
                link_res,
                proc_res,
                buffers: BTreeMap::new(),
                next_handle: 0,
                timeline: Timeline::with_spans(),
                io: IoTracker::new(),
                spawned: vec![0; n],
                active: vec![0; n],
                dag: None,
                lease: None,
                charged: BTreeMap::new(),
            }),
        })
    }

    /// The topology.
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecMode {
        self.mode
    }

    /// The configured setup costs.
    pub fn setup_costs(&self) -> SetupCosts {
        self.setup
    }

    /// Whether real bytes move (Real mode).
    pub fn is_real(&self) -> bool {
        self.mode == ExecMode::Real
    }

    /// Locate the index of a processor of `kind` on `node`.
    pub(crate) fn proc_index(&self, node: NodeId, kind: ProcKind) -> Result<usize> {
        self.tree
            .node(node)
            .procs
            .iter()
            .position(|p| p.kind == kind)
            .ok_or(NorthupError::NoProcessor(node))
    }

    /// Record a recursive spawn through `node` (work-queue bookkeeping).
    pub(crate) fn note_spawn(&self, node: NodeId) {
        let mut g = self.inner.lock();
        g.spawned[node.0] += 1;
        g.active[node.0] += 1;
    }

    /// Record a recursive task retiring at `node`.
    pub(crate) fn note_retire(&self, node: NodeId) {
        let mut g = self.inner.lock();
        g.active[node.0] = g.active[node.0].saturating_sub(1);
    }

    /// Total recursive tasks ever spawned through `node` (queue statistics,
    /// §V-E: "examining the status of a subsystem can be easily accomplished
    /// by checking the queue associated with the root of a subtree").
    pub fn tasks_spawned(&self, node: NodeId) -> u64 {
        self.inner.lock().spawned[node.0]
    }

    /// Recursive tasks currently in flight at `node`.
    pub fn tasks_active(&self, node: NodeId) -> u64 {
        self.inner.lock().active[node.0]
    }

    /// Snapshot the execution report so far.
    pub fn report(&self) -> RunReport {
        let g = self.inner.lock();
        let breakdown = g.timeline.breakdown();
        let io: Vec<(String, northup_hw::IoTotals)> =
            g.io.devices()
                .map(|(name, t)| (name.to_string(), t))
                .collect();
        let utilization = g
            .node_res
            .iter()
            .map(|r| (r.name().to_string(), r.stats()))
            .collect();
        RunReport {
            breakdown,
            io,
            utilization,
        }
    }

    /// Current per-device I/O totals for one device name.
    pub fn io_totals(&self, device: &str) -> northup_hw::IoTotals {
        self.inner.lock().io.totals(device)
    }

    /// Current virtual makespan (latest finish of anything scheduled).
    pub fn makespan(&self) -> SimDur {
        self.inner.lock().timeline.makespan()
    }

    /// Export the recorded activity spans as Chrome trace-event JSON
    /// (open in `chrome://tracing` / Perfetto) — one track per category.
    pub fn chrome_trace(&self) -> String {
        self.inner.lock().timeline.chrome_trace()
    }

    /// Virtual time at which a node's device resource frees up (used by
    /// branch schedulers to estimate where a new chunk would finish first,
    /// §V-E: "examining the status of a subsystem").
    pub fn node_busy_until(&self, node: NodeId) -> SimTime {
        self.inner.lock().node_res[node.0].busy_until()
    }

    /// Virtual time at which a processor of `kind` on `node` frees up.
    pub fn proc_busy_until(&self, node: NodeId, kind: ProcKind) -> Result<SimTime> {
        let pi = self.proc_index(node, kind)?;
        Ok(self.inner.lock().proc_res[node.0][pi].busy_until())
    }

    /// Start recording the task dependency graph (paper §III-C future
    /// work: "the recursive tree can be further unfolded to a dependency
    /// graph"). Operations issued after this call are captured.
    pub fn enable_dag(&self) {
        let mut g = self.inner.lock();
        if g.dag.is_none() {
            g.dag = Some(DagRecorder::default());
        }
    }

    /// Snapshot the recorded task DAG (empty if recording was not enabled).
    pub fn task_dag(&self) -> TaskDag {
        self.inner
            .lock()
            .dag
            .as_ref()
            .map(|d| d.snapshot())
            .unwrap_or_default()
    }

    /// Install a capacity lease: subsequent `alloc`s charge the lease on
    /// the buffer's node and `release`s credit it back. Replaces any
    /// previously installed lease and returns it (buffers charged to the
    /// old lease still credit the old lease's accounting through its
    /// shared `Arc`) — so a service runtime can swap leases between jobs,
    /// or restore the previous one after a scoped run.
    pub fn install_lease(
        &self,
        lease: std::sync::Arc<crate::lease::CapacityLease>,
    ) -> Option<std::sync::Arc<crate::lease::CapacityLease>> {
        self.inner.lock().lease.replace(lease)
    }

    /// Remove the installed capacity lease; allocations become unmetered.
    pub fn clear_lease(&self) {
        self.inner.lock().lease = None;
    }

    /// The currently installed capacity lease, if any.
    pub fn lease(&self) -> Option<std::sync::Arc<crate::lease::CapacityLease>> {
        self.inner.lock().lease.clone()
    }

    /// Record an explicit runtime-overhead span (tree lookups, queue
    /// management). The paper measures total runtime overhead < 1% (§V-B).
    pub fn charge_runtime(&self, at_least: SimDur, label: &str) {
        let mut g = self.inner.lock();
        let start = SimTime::ZERO;
        let end = start + at_least;
        g.timeline.record(start, end, Category::Runtime, label);
    }
}

/// Execution report: the material of the paper's Figs. 6–8.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Per-category busy times + makespan.
    pub breakdown: Breakdown,
    /// Per-device I/O totals (bytes and ops).
    pub io: Vec<(String, northup_hw::IoTotals)>,
    /// Per-node device resource utilization.
    pub utilization: Vec<(String, northup_sim::ResourceStats)>,
}

impl RunReport {
    /// Total runtime (virtual makespan).
    pub fn makespan(&self) -> SimDur {
        self.breakdown.makespan
    }

    /// Fraction of summed busy time in a category (Figs. 7/8 bars).
    pub fn share(&self, c: Category) -> f64 {
        self.breakdown.share(c)
    }
}
