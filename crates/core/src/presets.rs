//! Ready-made topologies for the paper's evaluated machines and the
//! emerging-memory systems its discussion motivates.

use crate::topology::{NodeId, ProcKind, ProcessorDesc, Tree, TreeBuilder};
use northup_hw::{catalog, DeviceSpec};

fn apu_gpu_proc() -> ProcessorDesc {
    // 1 MiB of GPU L2 on the APU part.
    ProcessorDesc::new(ProcKind::Gpu, "apu-gpu", 1 << 20)
}

fn apu_cpu_proc() -> ProcessorDesc {
    ProcessorDesc::new(ProcKind::Cpu, "apu-cpu", 4 << 20)
}

/// The paper's two-level APU configuration (§V-B): storage (SSD or HDD) at
/// the root, a 2 GB DRAM staging buffer below it, with the APU's CPU and
/// integrated GPU both attached to the DRAM leaf (shared-virtual-memory
/// APU — "a leaf node associated with more than one processor", §III-E).
///
/// Node ids: `n0` = storage, `n1` = DRAM leaf.
pub fn apu_two_level(storage: DeviceSpec) -> Tree {
    let mut b = TreeBuilder::new(storage);
    let dram = b.add_child(
        NodeId(0),
        catalog::dram_staging_2gb(),
        catalog::dram_dma_link(),
    );
    b.attach_processor(dram, apu_gpu_proc());
    b.attach_processor(dram, apu_cpu_proc());
    b.build()
}

/// The paper's three-level discrete-GPU configuration (§V-C, Fig. 8):
/// storage -> DRAM -> W9100 device memory. The CPU attaches to the DRAM
/// *inner* node (§III-B's explicit exception); the GPU to the device-memory
/// leaf.
///
/// Node ids: `n0` = storage, `n1` = DRAM, `n2` = GPU device memory leaf.
pub fn discrete_gpu_three_level(storage: DeviceSpec) -> Tree {
    let mut b = TreeBuilder::new(storage);
    let dram = b.add_child(
        NodeId(0),
        catalog::dram_staging_2gb(),
        catalog::dram_dma_link(),
    );
    b.attach_processor(dram, ProcessorDesc::new(ProcKind::Cpu, "host-cpu", 8 << 20));
    let gpumem = b.add_child(dram, catalog::gpu_devmem_w9100(), catalog::pcie3_x16());
    b.attach_processor(gpumem, ProcessorDesc::new(ProcKind::Gpu, "w9100", 1 << 20));
    b.build()
}

/// In-memory baseline "tree": a single 16 GB DRAM root holding the whole
/// working set (§V-A), CPU and GPU attached. Used to time the baselines in
/// the same framework (no file level exists, so no I/O is ever charged).
pub fn in_memory() -> Tree {
    let mut b = TreeBuilder::new(catalog::dram_16gb());
    b.attach_processor(NodeId(0), apu_gpu_proc());
    b.attach_processor(NodeId(0), apu_cpu_proc());
    b.build()
}

/// The asymmetric, heterogeneous tree of the paper's Fig. 2: a root storage
/// with three subtrees of different depths and device mixes (one DRAM+CPU
/// leaf, one NVM subtree feeding a GPU, one DRAM node fanning out to two
/// accelerator leaves — "node 3 has two children 6 and 7").
pub fn asymmetric_fig2() -> Tree {
    asymmetric_fig2_with(catalog::hdd_wd5000())
}

/// [`asymmetric_fig2`] with a caller-chosen root storage (e.g. an SSD, so
/// batch studies are not bottlenecked by the shared root device).
pub fn asymmetric_fig2_with(storage: DeviceSpec) -> Tree {
    let mut b = TreeBuilder::new(storage); // n0
                                           // Subtree 1: DRAM leaf with a CPU.
    let n1 = b.add_child(NodeId(0), catalog::dram_16gb(), catalog::dram_dma_link());
    b.attach_processor(n1, ProcessorDesc::new(ProcKind::Cpu, "cpu0", 8 << 20));
    // Subtree 2: NVM -> DRAM -> GPU device memory.
    let n2 = b.add_child(
        NodeId(0),
        catalog::nvm_optane_like(),
        catalog::dram_dma_link(),
    );
    let n4 = b.add_child(n2, catalog::dram_staging_2gb(), catalog::dram_dma_link());
    let n5 = b.add_child(n4, catalog::gpu_devmem_4gb(), catalog::pcie3_x16());
    b.attach_processor(n5, ProcessorDesc::new(ProcKind::Gpu, "gpu0", 1 << 20));
    // Subtree 3: DRAM with two accelerator children (nodes 6 and 7).
    let n3 = b.add_child(
        NodeId(0),
        catalog::dram_staging_2gb(),
        catalog::dram_dma_link(),
    );
    let n6 = b.add_child(n3, catalog::stacked_dram_4gb(), catalog::dram_dma_link());
    b.attach_processor(n6, ProcessorDesc::new(ProcKind::Gpu, "pim", 512 << 10));
    let n7 = b.add_child(n3, catalog::gpu_devmem_4gb(), catalog::pcie3_x16());
    b.attach_processor(n7, ProcessorDesc::new(ProcKind::Fpga, "fpga0", 256 << 10));
    b.build()
}

/// A future exascale compute node (§V-D / §VI "Northup for HPC"): NVM as
/// large slow per-node memory, DRAM, die-stacked HBM, and GPU device
/// memory — four software-managed levels.
pub fn exascale_node() -> Tree {
    let mut b = TreeBuilder::new(catalog::nvm_optane_like());
    let dram = b.add_child(NodeId(0), catalog::dram_16gb(), catalog::dram_dma_link());
    b.attach_processor(dram, ProcessorDesc::new(ProcKind::Cpu, "host-cpu", 8 << 20));
    let hbm = b.add_child(dram, catalog::stacked_dram_4gb(), catalog::dram_dma_link());
    let gpu = b.add_child(hbm, catalog::gpu_devmem_w9100(), catalog::pcie3_x16());
    b.attach_processor(gpu, ProcessorDesc::new(ProcKind::Gpu, "exa-gpu", 2 << 20));
    b.build()
}

/// A small distributed cluster (the §VII future-work direction): a shared
/// parallel file system at the root, with `gpu_nodes` GPU compute nodes
/// and `cpu_nodes` CPU-only nodes hanging off it over InfiniBand. Each GPU
/// node is an NVM -> DRAM -> GPU chain (NVM as per-node slower memory, the
/// §VI "Northup for HPC" configuration); CPU nodes stop at DRAM.
pub fn cluster(gpu_nodes: usize, cpu_nodes: usize) -> Tree {
    let mut b = TreeBuilder::new(catalog::parallel_fs());
    for i in 0..gpu_nodes {
        let nvm = b.add_child(
            NodeId(0),
            catalog::nvm_optane_like(),
            catalog::infiniband_edr(),
        );
        let dram = b.add_child(nvm, catalog::dram_16gb(), catalog::dram_dma_link());
        b.attach_processor(dram, ProcessorDesc::new(ProcKind::Cpu, "host-cpu", 8 << 20));
        let gpu = b.add_child(dram, catalog::gpu_devmem_w9100(), catalog::pcie3_x16());
        b.attach_processor(gpu, ProcessorDesc::new(ProcKind::Gpu, "gpu0", 1 << 20));
        let _ = i;
    }
    for _ in 0..cpu_nodes {
        let nvm = b.add_child(
            NodeId(0),
            catalog::nvm_optane_like(),
            catalog::infiniband_edr(),
        );
        let dram = b.add_child(nvm, catalog::dram_16gb(), catalog::dram_dma_link());
        b.attach_processor(dram, ProcessorDesc::new(ProcKind::Cpu, "cpu0", 8 << 20));
    }
    b.build()
}

/// One shard of a federated fleet (DESIGN.md §11): a compact [`cluster`]
/// — two GPU nodes and one CPU node behind a parallel file system — that
/// `northup-fleet` instantiates N times, each shard with its own
/// `JobScheduler`, budgets, and fault plan. Small on purpose: a 16-shard
/// fleet replaying a 100k-job trace stays cheap while still exercising
/// multi-leaf placement, quarantine, and probation inside every shard.
pub fn fleet_shard() -> Tree {
    cluster(2, 1)
}

/// NVM remapped into the address space (paper §II / §III-B: the same part
/// can be "part of physical address space ... or fast storage"): identical
/// shape to [`apu_two_level`], but the root is NVM with a memory-class
/// interface, so data movement dispatches to memcpy instead of file I/O.
pub fn apu_with_nvm_memory() -> Tree {
    apu_two_level(catalog::nvm_as_memory())
}

#[cfg(test)]
mod tests {
    use super::*;
    use northup_hw::StorageClass;

    #[test]
    fn apu_preset_shape() {
        let t = apu_two_level(catalog::ssd_hyperx_predator());
        assert_eq!(t.len(), 2);
        assert_eq!(t.max_level(), 1);
        let leaf = t.node(NodeId(1));
        assert!(leaf.is_leaf());
        assert_eq!(leaf.procs.len(), 2, "APU leaf has CPU and GPU");
        assert_eq!(t.storage_class(NodeId(0)), StorageClass::File);
    }

    #[test]
    fn discrete_preset_shape() {
        let t = discrete_gpu_three_level(catalog::hdd_wd5000());
        assert_eq!(t.len(), 3);
        assert_eq!(t.max_level(), 2);
        // CPU on the inner DRAM node, GPU on the leaf.
        assert_eq!(t.node(NodeId(1)).procs[0].kind, ProcKind::Cpu);
        assert!(!t.node(NodeId(1)).is_leaf());
        assert_eq!(t.node(NodeId(2)).procs[0].kind, ProcKind::Gpu);
        assert_eq!(t.storage_class(NodeId(2)), StorageClass::Device);
    }

    #[test]
    fn in_memory_has_no_file_level() {
        let t = in_memory();
        assert_eq!(t.len(), 1);
        assert!(t.nodes().all(|n| n.mem.class != StorageClass::File));
    }

    #[test]
    fn fig2_tree_is_asymmetric() {
        let t = asymmetric_fig2();
        assert_eq!(t.children(NodeId(0)).len(), 3);
        // Depths differ across subtrees.
        let depths: Vec<usize> = t.leaves().map(|n| n.level).collect();
        let min = depths.iter().min().unwrap();
        let max = depths.iter().max().unwrap();
        assert!(max > min, "asymmetric depths: {depths:?}");
        // Heterogeneous processors.
        let kinds: std::collections::HashSet<ProcKind> = t
            .nodes()
            .flat_map(|n| n.procs.iter().map(|p| p.kind))
            .collect();
        assert!(kinds.len() >= 3, "cpu+gpu+fpga: {kinds:?}");
    }

    #[test]
    fn exascale_is_four_levels() {
        let t = exascale_node();
        assert_eq!(t.max_level(), 3);
        // Bandwidth increases monotonically down the chain.
        let mut id = Some(t.root());
        let mut last_bw = 0.0;
        while let Some(n) = id {
            let node = t.node(n);
            assert!(node.mem.read_bw > last_bw);
            last_bw = node.mem.read_bw;
            id = node.children.first().copied();
        }
    }

    #[test]
    fn cluster_preset_shape() {
        let t = cluster(3, 1);
        assert_eq!(t.children(NodeId(0)).len(), 4, "four nodes off the PFS");
        // GPU nodes are 3 levels deep below the root; CPU nodes are 2.
        let depths: Vec<usize> = t.leaves().map(|l| l.level).collect();
        assert_eq!(depths.iter().filter(|&&d| d == 3).count(), 3);
        assert_eq!(depths.iter().filter(|&&d| d == 2).count(), 1);
        // Node-to-node data never moves directly (tree edges only).
        let leaves: Vec<NodeId> = t.leaves().map(|l| l.id).collect();
        assert!(!t.adjacent(leaves[0], leaves[1]));
    }

    #[test]
    fn fleet_shard_is_a_small_multi_leaf_cluster() {
        let t = fleet_shard();
        assert_eq!(t.children(NodeId(0)).len(), 3, "three nodes off the PFS");
        assert!(t.leaves().count() >= 3, "re-routing needs leaf diversity");
        assert_eq!(t.storage_class(NodeId(0)), StorageClass::File);
    }

    #[test]
    fn nvm_remap_changes_dispatch_class_only() {
        let storage = apu_two_level(catalog::nvm_optane_like());
        let memory = apu_with_nvm_memory();
        assert_eq!(storage.len(), memory.len());
        assert_eq!(storage.storage_class(NodeId(0)), StorageClass::File);
        assert_eq!(memory.storage_class(NodeId(0)), StorageClass::Memory);
        assert_eq!(
            storage.node(NodeId(0)).mem.read_bw,
            memory.node(NodeId(0)).mem.read_bw
        );
    }
}
