//! Layout-transforming data movement (paper §VI "Data Layout").
//!
//! "One can imagine when data migrates across memory levels, chunks can be
//! transformed and stored in different formats ... Northup can be easily
//! extended to support this with a special version of `move_data()`."
//!
//! [`Runtime::move_data_transform`] is that special version: it moves a
//! buffer between (adjacent) nodes while re-laying it out. The transform
//! work is charged to a processor on the destination side (or its nearest
//! ancestor with a CPU) on top of the transfer itself.

use crate::data::BufferHandle;
use crate::error::{NorthupError, Result};
use crate::runtime::Runtime;
use crate::topology::{NodeId, ProcKind};
use northup_sim::{Served, SimDur};

/// Supported layout transformations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transform {
    /// Transpose a row-major `rows x cols` matrix of `elem`-byte elements
    /// into column-major (i.e. a `cols x rows` row-major matrix).
    RowToCol {
        /// Rows of the source matrix.
        rows: usize,
        /// Columns of the source matrix.
        cols: usize,
        /// Element size in bytes.
        elem: usize,
    },
    /// Convert an array of `records` structures, each of `fields` fields of
    /// `elem` bytes, from AoS to SoA.
    AosToSoa {
        /// Number of records.
        records: usize,
        /// Fields per record.
        fields: usize,
        /// Bytes per field.
        elem: usize,
    },
    /// Inverse of [`Transform::AosToSoa`].
    SoaToAos {
        /// Number of records.
        records: usize,
        /// Fields per record.
        fields: usize,
        /// Bytes per field.
        elem: usize,
    },
}

impl Transform {
    /// Total bytes a buffer under this transform must hold.
    pub fn bytes(&self) -> u64 {
        match *self {
            Transform::RowToCol { rows, cols, elem } => (rows * cols * elem) as u64,
            Transform::AosToSoa {
                records,
                fields,
                elem,
            }
            | Transform::SoaToAos {
                records,
                fields,
                elem,
            } => (records * fields * elem) as u64,
        }
    }

    /// Apply to a byte buffer (pure function; used in Real mode).
    pub fn apply(&self, src: &[u8]) -> Vec<u8> {
        assert_eq!(src.len() as u64, self.bytes(), "transform size mismatch");
        let mut out = vec![0u8; src.len()];
        match *self {
            Transform::RowToCol { rows, cols, elem } => {
                for r in 0..rows {
                    for c in 0..cols {
                        let s = (r * cols + c) * elem;
                        let d = (c * rows + r) * elem;
                        out[d..d + elem].copy_from_slice(&src[s..s + elem]);
                    }
                }
            }
            Transform::AosToSoa {
                records,
                fields,
                elem,
            } => {
                for rec in 0..records {
                    for f in 0..fields {
                        let s = (rec * fields + f) * elem;
                        let d = (f * records + rec) * elem;
                        out[d..d + elem].copy_from_slice(&src[s..s + elem]);
                    }
                }
            }
            Transform::SoaToAos {
                records,
                fields,
                elem,
            } => {
                for rec in 0..records {
                    for f in 0..fields {
                        let s = (f * records + rec) * elem;
                        let d = (rec * fields + f) * elem;
                        out[d..d + elem].copy_from_slice(&src[s..s + elem]);
                    }
                }
            }
        }
        out
    }

    /// The inverse transform.
    pub fn inverse(&self) -> Transform {
        match *self {
            Transform::RowToCol { rows, cols, elem } => Transform::RowToCol {
                rows: cols,
                cols: rows,
                elem,
            },
            Transform::AosToSoa {
                records,
                fields,
                elem,
            } => Transform::SoaToAos {
                records,
                fields,
                elem,
            },
            Transform::SoaToAos {
                records,
                fields,
                elem,
            } => Transform::AosToSoa {
                records,
                fields,
                elem,
            },
        }
    }
}

/// Effective throughput of the layout-transform pass (strided gather +
/// sequential scatter on a CPU), bytes/s.
pub const TRANSFORM_BW: f64 = 4e9;

impl Runtime {
    /// Move a whole buffer between nodes while re-laying it out — the §VI
    /// extension of `move_data`. Sizes of both buffers must equal the
    /// transform footprint.
    pub fn move_data_transform(
        &self,
        dst: BufferHandle,
        src: BufferHandle,
        transform: Transform,
    ) -> Result<Served> {
        let bytes = transform.bytes();
        let src_size = self.buffer_size(src)?;
        let dst_size = self.buffer_size(dst)?;
        if src_size != bytes || dst_size != bytes {
            return Err(NorthupError::BadRange {
                buffer: if src_size != bytes { src } else { dst },
                offset: 0,
                len: bytes,
                size: if src_size != bytes {
                    src_size
                } else {
                    dst_size
                },
            });
        }

        // Real path: read, permute, write (bypassing move_data's byte copy).
        if self.is_real() && bytes > 0 {
            let mut tmp = vec![0u8; bytes as usize];
            self.read_slice(src, 0, &mut tmp)?;
            let transformed = transform.apply(&tmp);
            // The plain move below would overwrite dst with the *raw* bytes,
            // so perform the transfer accounting first, then inject.
            let served = self.move_data(dst, 0, src, 0, bytes)?;
            self.write_slice(dst, 0, &transformed)?;
            self.charge_transform_cost(dst, bytes)?;
            return Ok(served);
        }

        let served = self.move_data(dst, 0, src, 0, bytes)?;
        self.charge_transform_cost(dst, bytes)?;
        Ok(served)
    }

    /// Charge the permute pass to a CPU at/above the destination node.
    fn charge_transform_cost(&self, dst: BufferHandle, bytes: u64) -> Result<()> {
        let node = self.buffer_node(dst)?;
        let cpu_node = self.nearest_cpu(node);
        let dur = SimDur::from_secs_f64(bytes as f64 / TRANSFORM_BW);
        if let Some(n) = cpu_node {
            self.charge_compute(n, ProcKind::Cpu, dur, &[dst], &[dst], "layout transform")?;
        }
        Ok(())
    }

    /// Walk toward the root looking for a CPU.
    fn nearest_cpu(&self, mut node: NodeId) -> Option<NodeId> {
        loop {
            if self
                .tree()
                .node(node)
                .procs
                .iter()
                .any(|p| p.kind == ProcKind::Cpu)
            {
                return Some(node);
            }
            node = self.tree().parent(node)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::runtime::ExecMode;
    use northup_hw::catalog;
    use northup_sim::Category;

    #[test]
    fn transpose_bytes() {
        // 2x3 matrix of u16 elements.
        let src: Vec<u8> = vec![1, 0, 2, 0, 3, 0, 4, 0, 5, 0, 6, 0];
        let t = Transform::RowToCol {
            rows: 2,
            cols: 3,
            elem: 2,
        };
        let out = t.apply(&src);
        // Column-major of [[1,2,3],[4,5,6]] => 1,4,2,5,3,6.
        assert_eq!(out, vec![1, 0, 4, 0, 2, 0, 5, 0, 3, 0, 6, 0]);
    }

    #[test]
    fn transforms_invert() {
        let data: Vec<u8> = (0..60).collect();
        for t in [
            Transform::RowToCol {
                rows: 3,
                cols: 5,
                elem: 4,
            },
            Transform::AosToSoa {
                records: 5,
                fields: 3,
                elem: 4,
            },
            Transform::SoaToAos {
                records: 5,
                fields: 3,
                elem: 4,
            },
        ] {
            let back = t.inverse().apply(&t.apply(&data));
            assert_eq!(back, data, "{t:?} roundtrip");
        }
    }

    #[test]
    fn move_with_transform_delivers_transformed_bytes() {
        let rt = Runtime::new(
            presets::apu_two_level(catalog::ssd_hyperx_predator()),
            ExecMode::Real,
        )
        .unwrap();
        let t = Transform::AosToSoa {
            records: 4,
            fields: 2,
            elem: 1,
        };
        let src = rt.alloc(8, rt.tree().root()).unwrap();
        let dst = rt.alloc(8, crate::topology::NodeId(1)).unwrap();
        rt.write_slice(src, 0, &[0, 1, 10, 11, 20, 21, 30, 31])
            .unwrap();
        rt.move_data_transform(dst, src, t).unwrap();
        let mut out = [0u8; 8];
        rt.read_slice(dst, 0, &mut out).unwrap();
        assert_eq!(out, [0, 10, 20, 30, 1, 11, 21, 31]);
        // The permute pass was charged to the CPU.
        let rep = rt.report();
        assert!(rep.breakdown.get(Category::CpuCompute) > northup_sim::SimDur::ZERO);
    }

    #[test]
    fn size_mismatch_is_rejected() {
        let rt = Runtime::new(
            presets::apu_two_level(catalog::ssd_hyperx_predator()),
            ExecMode::Real,
        )
        .unwrap();
        let t = Transform::RowToCol {
            rows: 4,
            cols: 4,
            elem: 4,
        };
        let src = rt.alloc(64, rt.tree().root()).unwrap();
        let dst = rt.alloc(32, crate::topology::NodeId(1)).unwrap();
        assert!(rt.move_data_transform(dst, src, t).is_err());
    }
}
