//! Deterministic fault plans and retry policies — the failure-domain
//! vocabulary shared by every execution backend.
//!
//! A production-scale out-of-core service must survive flaky SSDs,
//! stalled links, and dying leaves. The hw layer already *surfaces*
//! device faults as typed errors ([`FaultyBackend`](northup_hw) →
//! `NorthupError::Hw`); this module supplies the pieces the layers above
//! need to *recover*:
//!
//! * [`FaultPlan`] — a seeded, immutable description of which stage
//!   bookings fault. The decision for the `ordinal`-th operation on a
//!   node is a pure hash of `(seed, node, ordinal)`, so a chaos run is
//!   bit-reproducible: same plan + same trace ⇒ same faults at the same
//!   virtual-time points, same schedule, same report. Plans can mix
//!   probabilistic rates (in 1/65536 units) with exactly scripted
//!   injections ([`FaultPlan::script`]) for targeted tests.
//! * [`FaultKind`] — *transient* faults go away when retried (a bus
//!   hiccup, a dropped DMA); *persistent* faults do not (a dying device)
//!   and count toward node quarantine.
//! * [`RetryPolicy`] — bounded attempts with exponential backoff and
//!   jitter drawn from the plan's seeded stream (never from a global
//!   RNG). The scheduler sleeps in virtual time; real-mode drivers sleep
//!   for real — both compute the delay with [`RetryPolicy::backoff`].
//!
//! Nothing here touches wall clocks or ambient randomness, so the
//! project's determinism-taint invariant holds by construction.

use crate::topology::NodeId;
use northup_sim::SimDur;
use std::collections::{BTreeMap, BTreeSet};

/// What retrying a faulted stage will do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// The fault clears on retry (bounded attempts + backoff recover it).
    Transient,
    /// The fault does not clear; the stage must move to other hardware.
    /// Persistent faults count toward the node's quarantine threshold.
    Persistent,
}

/// The per-64k probability space faults are drawn from.
const ROLL_SPACE: u32 = 1 << 16;

/// A deterministic, seeded fault plan.
///
/// The plan is consulted once per stage booking: the `ordinal`-th booking
/// on `node` faults (or not) as a pure function of `(seed, node,
/// ordinal)`. Ordinals are per-node operation counters the consumer
/// maintains, so the plan itself stays immutable and shareable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    transient_per_64k: u32,
    persistent_per_64k: u32,
    /// Nodes the probabilistic rates apply to; empty = every node.
    nodes: BTreeSet<NodeId>,
    /// Exactly scripted injections, overriding the probabilistic stream.
    scripted: BTreeMap<(NodeId, u64), FaultKind>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults; add rates or scripted
    /// injections with the builder methods.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_per_64k: 0,
            persistent_per_64k: 0,
            nodes: BTreeSet::new(),
            scripted: BTreeMap::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Builder: the same rates, node filter, and scripted injections
    /// under a different seed — how a federation derives per-shard plans
    /// from one fleet seed (every shard faults with the same *shape* but
    /// an independent stream).
    pub fn reseeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder: each targeted booking faults *transiently* with
    /// probability `per_64k / 65536` (clamped to the roll space).
    pub fn transient_rate(mut self, per_64k: u32) -> Self {
        self.transient_per_64k = per_64k.min(ROLL_SPACE);
        self
    }

    /// Builder: each targeted booking faults *persistently* with
    /// probability `per_64k / 65536` (clamped to the roll space).
    pub fn persistent_rate(mut self, per_64k: u32) -> Self {
        self.persistent_per_64k = per_64k.min(ROLL_SPACE);
        self
    }

    /// Builder: restrict the probabilistic rates to these nodes (an empty
    /// set — the default — targets every node). Scripted injections are
    /// unaffected.
    pub fn on_nodes<I: IntoIterator<Item = NodeId>>(mut self, nodes: I) -> Self {
        self.nodes = nodes.into_iter().collect();
        self
    }

    /// Builder: script an exact injection — the `ordinal`-th booking on
    /// `node` faults with `kind`, regardless of the rates.
    pub fn script(mut self, node: NodeId, ordinal: u64, kind: FaultKind) -> Self {
        self.scripted.insert((node, ordinal), kind);
        self
    }

    /// True when the probabilistic rates apply to `node`.
    pub fn targets(&self, node: NodeId) -> bool {
        self.nodes.is_empty() || self.nodes.contains(&node)
    }

    /// True when the plan can ever inject a fault.
    pub fn is_active(&self) -> bool {
        self.transient_per_64k > 0 || self.persistent_per_64k > 0 || !self.scripted.is_empty()
    }

    /// The fault (if any) for the `ordinal`-th booking on `node`. Pure:
    /// the same arguments always return the same answer.
    pub fn decide(&self, node: NodeId, ordinal: u64) -> Option<FaultKind> {
        if let Some(&k) = self.scripted.get(&(node, ordinal)) {
            return Some(k);
        }
        if !self.targets(node) {
            return None;
        }
        let roll = (self.hash(node, ordinal, 0x01) & u64::from(ROLL_SPACE - 1)) as u32;
        if roll < self.persistent_per_64k {
            Some(FaultKind::Persistent)
        } else if roll
            < self
                .persistent_per_64k
                .saturating_add(self.transient_per_64k)
        {
            Some(FaultKind::Transient)
        } else {
            None
        }
    }

    /// Deterministic backoff jitter in `[0, 1)` for the `attempt`-th
    /// retry of the fault at `(node, ordinal)` — drawn from the plan's
    /// seeded stream, never from a global RNG.
    pub fn jitter(&self, node: NodeId, ordinal: u64, attempt: u32) -> f64 {
        let h = self.hash(node, ordinal, 0x100 + u64::from(attempt));
        // 53 high bits → an exactly representable dyadic in [0, 1).
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Derive a [`FaultyBackend`](northup_hw) failure period for
    /// real-mode wiring: every `N`-th matching backend op on `node`
    /// fails, approximating the transient rate. `None` when the node is
    /// untargeted or the plan injects no transient faults. The period is
    /// floored at 2 so a retried operation can succeed.
    pub fn real_fail_every(&self, node: NodeId) -> Option<u64> {
        if self.transient_per_64k == 0 || !self.targets(node) {
            return None;
        }
        Some(u64::from(ROLL_SPACE / self.transient_per_64k.max(1)).max(2))
    }

    /// splitmix64 over the plan seed and the decision coordinates.
    fn hash(&self, node: NodeId, ordinal: u64, salt: u64) -> u64 {
        let mut x = self
            .seed
            .wrapping_add((node.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(ordinal.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(salt.wrapping_mul(0x94D0_49BB_1331_11EB));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

/// Bounded-attempt exponential backoff for transiently faulted stages.
///
/// A stage is attempted at most `max_attempts` times; the `n`-th retry
/// waits `base_backoff × 2^(n-1)`, capped at `max_backoff` and stretched
/// by up to 100% of seeded jitter. When the attempts are exhausted the
/// fault escalates to the persistent path (the stage moves to other
/// hardware, or the job fails).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total serve attempts per stage, including the first (≥ 1; 1 means
    /// no retries — every fault escalates immediately).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: SimDur,
    /// Ceiling on the exponential backoff (before jitter).
    pub max_backoff: SimDur,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: SimDur::from_micros(200),
            max_backoff: SimDur::from_millis(20),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (every fault escalates immediately).
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The backoff before the `retry`-th retry (1-based), stretched by
    /// `jitter ∈ [0, 1]`: `min(base × 2^(retry-1), max) × (1 + jitter)`,
    /// floored at one microsecond so same-instant event loops cannot
    /// form.
    pub fn backoff(&self, retry: u32, jitter: f64) -> SimDur {
        let exp = retry.saturating_sub(1).min(20);
        let raw = self.base_backoff.as_secs_f64() * (1u64 << exp) as f64;
        let capped = raw.min(self.max_backoff.as_secs_f64());
        let j = if jitter.is_finite() {
            jitter.clamp(0.0, 1.0)
        } else {
            0.0
        };
        SimDur::from_secs_f64(capped * (1.0 + j)).max(SimDur::from_micros(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_seed_dependent() {
        let a = FaultPlan::new(7).transient_rate(8000).persistent_rate(800);
        let b = FaultPlan::new(7).transient_rate(8000).persistent_rate(800);
        let c = FaultPlan::new(8).transient_rate(8000).persistent_rate(800);
        let stream = |p: &FaultPlan| -> Vec<Option<FaultKind>> {
            (0..4096).map(|i| p.decide(NodeId(1), i)).collect()
        };
        assert_eq!(stream(&a), stream(&b), "same seed ⇒ same stream");
        assert_ne!(stream(&a), stream(&c), "different seed ⇒ different stream");
        let faults = stream(&a).iter().filter(|d| d.is_some()).count();
        // ~13.4% expected; generous brackets keep the test seed-robust.
        assert!(faults > 200 && faults < 1200, "got {faults} faults");
    }

    #[test]
    fn scripts_override_rates_and_node_filters() {
        let plan = FaultPlan::new(1)
            .on_nodes([NodeId(2)])
            .transient_rate(65536)
            .script(NodeId(5), 3, FaultKind::Persistent);
        assert_eq!(plan.decide(NodeId(2), 0), Some(FaultKind::Transient));
        assert_eq!(plan.decide(NodeId(4), 0), None, "untargeted node");
        assert_eq!(plan.decide(NodeId(5), 3), Some(FaultKind::Persistent));
        assert_eq!(plan.decide(NodeId(5), 4), None);
    }

    #[test]
    fn reseeded_keeps_the_shape_but_changes_the_stream() {
        let base = FaultPlan::new(7)
            .transient_rate(8000)
            .persistent_rate(800)
            .on_nodes([NodeId(2)])
            .script(NodeId(5), 3, FaultKind::Persistent);
        let other = base.clone().reseeded(99);
        assert_eq!(other.seed(), 99);
        assert!(other.targets(NodeId(2)) && !other.targets(NodeId(4)));
        assert_eq!(other.decide(NodeId(5), 3), Some(FaultKind::Persistent));
        let stream = |p: &FaultPlan| -> Vec<Option<FaultKind>> {
            (0..4096).map(|i| p.decide(NodeId(2), i)).collect()
        };
        assert_ne!(stream(&base), stream(&other), "independent streams");
    }

    #[test]
    fn jitter_is_deterministic_and_in_range() {
        let plan = FaultPlan::new(42);
        for a in 1..6 {
            let j1 = plan.jitter(NodeId(0), 17, a);
            let j2 = plan.jitter(NodeId(0), 17, a);
            assert_eq!(j1.to_bits(), j2.to_bits());
            assert!((0.0..1.0).contains(&j1));
        }
        assert_ne!(
            plan.jitter(NodeId(0), 17, 1).to_bits(),
            plan.jitter(NodeId(0), 18, 1).to_bits()
        );
    }

    #[test]
    fn backoff_grows_caps_and_respects_jitter() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff: SimDur::from_micros(100),
            max_backoff: SimDur::from_micros(1000),
        };
        let b1 = p.backoff(1, 0.0);
        let b2 = p.backoff(2, 0.0);
        let b5 = p.backoff(5, 0.0);
        assert!(b2 > b1, "exponential growth");
        assert_eq!(b5, SimDur::from_micros(1000), "capped");
        assert!(p.backoff(1, 1.0) > b1, "jitter stretches");
        assert!(p.backoff(1, f64::NAN) == b1, "non-finite jitter ignored");
        assert!(p.backoff(40, 0.0) >= b1, "huge retry counts do not wrap");
    }

    #[test]
    fn real_fail_every_follows_the_rate() {
        let none = FaultPlan::new(0);
        assert_eq!(none.real_fail_every(NodeId(0)), None);
        let p = FaultPlan::new(0).transient_rate(8192); // 1/8
        assert_eq!(p.real_fail_every(NodeId(0)), Some(8));
        let hot = FaultPlan::new(0).transient_rate(65536);
        assert_eq!(hot.real_fail_every(NodeId(0)), Some(2), "floored at 2");
        let scoped = FaultPlan::new(0).transient_rate(8192).on_nodes([NodeId(1)]);
        assert_eq!(scoped.real_fail_every(NodeId(0)), None);
        assert_eq!(scoped.real_fail_every(NodeId(1)), Some(8));
    }
}
