//! The reusable multi-stage chunk pipeline (paper §III-C).
//!
//! "We also support task queues to keep track of the progress of data
//! movement for individual chunks ... This enables multi-stage data
//! transfer and better parallelism. Whenever the space of lower memory
//! levels is freed, more chunks can be scheduled for movement."
//!
//! Every Northup application repeats the same discipline: a ring of
//! staging-buffer slots, loads for chunk *t+1* issued before chunk *t*'s
//! compute and write-back (so the storage device streams ahead instead of
//! head-of-line blocking behind result writes), and write-after-read
//! hazards bounding how far ahead the ring may run. [`ChunkPipeline`]
//! packages that pattern so new applications get correct pipelining for
//! free.

use crate::data::BufferHandle;
use crate::error::Result;
use crate::runtime::Runtime;
use crate::topology::NodeId;

/// A ring of staging slots at one tree node, each slot holding one buffer
/// per configured size.
///
/// ```
/// use northup::{presets, ChunkPipeline, ExecMode, NodeId, ProcKind, Runtime};
/// use northup_hw::catalog;
/// use northup_sim::SimDur;
///
/// let rt = Runtime::new(
///     presets::apu_two_level(catalog::ssd_hyperx_predator()),
///     ExecMode::Real,
/// ).unwrap();
/// let file = rt.alloc(4096, NodeId(0)).unwrap();
///
/// let pipe = ChunkPipeline::new(&rt, NodeId(1), 2, &[1024]).unwrap();
/// let chunks: Vec<u64> = (0..4).collect();
/// pipe.run(
///     &chunks,
///     |&i, bufs| { rt.move_data(bufs[0], 0, file, i * 1024, 1024)?; Ok(()) },
///     |_, bufs| {
///         rt.charge_compute(NodeId(1), ProcKind::Gpu, SimDur::from_micros(50),
///                           &[bufs[0]], &[], "kernel")?;
///         Ok(())
///     },
/// ).unwrap();
/// pipe.release().unwrap();
/// ```
pub struct ChunkPipeline<'rt> {
    rt: &'rt Runtime,
    node: NodeId,
    ring: usize,
    /// `slots[r][k]` = buffer `k` of ring slot `r`.
    slots: Vec<Vec<BufferHandle>>,
}

impl<'rt> ChunkPipeline<'rt> {
    /// Allocate `ring` slots (min 2 — prefetch needs double buffering) of
    /// one buffer per entry of `buf_sizes` on `node`.
    pub fn new(rt: &'rt Runtime, node: NodeId, ring: usize, buf_sizes: &[u64]) -> Result<Self> {
        let ring = ring.max(2);
        let mut slots = Vec::with_capacity(ring);
        for _ in 0..ring {
            let bufs = buf_sizes
                .iter()
                .map(|&s| rt.alloc(s, node))
                .collect::<Result<Vec<_>>>()?;
            slots.push(bufs);
        }
        Ok(ChunkPipeline {
            rt,
            node,
            ring,
            slots,
        })
    }

    /// The staging node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Ring depth.
    pub fn ring(&self) -> usize {
        self.ring
    }

    /// Drive `items` through the pipeline: `load(item, slot)` stages the
    /// item's inputs; `work(item, slot)` computes and writes back. Loads for
    /// item *t+1* are issued before `work(t)`, which is what lets the
    /// storage device stream ahead. Slot reuse hazards (a load overwriting
    /// a slot still being read) are handled by the runtime's dataflow
    /// dependencies.
    pub fn run<T>(
        &self,
        items: &[T],
        load: impl FnMut(&T, &[BufferHandle]) -> Result<()>,
        work: impl FnMut(&T, &[BufferHandle]) -> Result<()>,
    ) -> Result<()> {
        self.run_from(crate::fabric::Checkpoint::START, items, load, work)
    }

    /// Like [`run`](Self::run), resuming from a [`Checkpoint`]: items
    /// before `from.next_chunk` are skipped entirely — neither loaded nor
    /// worked — so an evicted chain continues at its next unprocessed
    /// chunk without repeating completed ones. Slot indexing stays keyed
    /// on the absolute item position, so a resumed run reuses the same
    /// ring slots the uninterrupted run would have.
    ///
    /// [`Checkpoint`]: crate::fabric::Checkpoint
    pub fn run_from<T>(
        &self,
        from: crate::fabric::Checkpoint,
        items: &[T],
        mut load: impl FnMut(&T, &[BufferHandle]) -> Result<()>,
        mut work: impl FnMut(&T, &[BufferHandle]) -> Result<()>,
    ) -> Result<()> {
        let start = (from.next_chunk as usize).min(items.len());
        if start >= items.len() {
            return Ok(());
        }
        load(&items[start], &self.slots[start % self.ring])?;
        for (t, item) in items.iter().enumerate().skip(start) {
            if t + 1 < items.len() {
                load(&items[t + 1], &self.slots[(t + 1) % self.ring])?;
            }
            work(item, &self.slots[t % self.ring])?;
        }
        Ok(())
    }

    /// Release every staged buffer.
    pub fn release(self) -> Result<()> {
        for slot in self.slots {
            for b in slot {
                self.rt.release(b)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::runtime::ExecMode;
    use crate::topology::ProcKind;
    use northup_hw::catalog;
    use northup_sim::SimDur;

    fn rt() -> Runtime {
        Runtime::new(
            presets::apu_two_level(catalog::ssd_hyperx_predator()),
            ExecMode::Real,
        )
        .unwrap()
    }

    #[test]
    fn pipeline_visits_every_item_in_order() {
        let rt = rt();
        let pipe = ChunkPipeline::new(&rt, NodeId(1), 2, &[64]).unwrap();
        let items: Vec<u32> = (0..7).collect();
        let loaded = std::cell::RefCell::new(Vec::new());
        let worked = std::cell::RefCell::new(Vec::new());
        pipe.run(
            &items,
            |&i, _| {
                loaded.borrow_mut().push(i);
                Ok(())
            },
            |&i, _| {
                worked.borrow_mut().push(i);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(worked.into_inner(), items);
        assert_eq!(loaded.into_inner(), items, "each item loaded exactly once");
        pipe.release().unwrap();
    }

    #[test]
    fn loads_run_one_item_ahead_of_work() {
        let rt = rt();
        let pipe = ChunkPipeline::new(&rt, NodeId(1), 2, &[16]).unwrap();
        let events = std::cell::RefCell::new(Vec::new());
        pipe.run(
            &[0, 1, 2],
            |&i, _| {
                events.borrow_mut().push(format!("load{i}"));
                Ok(())
            },
            |&i, _| {
                events.borrow_mut().push(format!("work{i}"));
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(
            events.into_inner(),
            vec!["load0", "load1", "work0", "load2", "work1", "work2"]
        );
    }

    #[test]
    fn pipelined_chunks_overlap_io_and_compute() {
        // The whole point: with the pipeline, total time ~ max(io, compute),
        // not their sum.
        let rt = rt();
        let chunk = 50_000_000u64; // ~36 ms SSD read each
        let file = rt.alloc(chunk * 6, NodeId(0)).unwrap();
        let pipe = ChunkPipeline::new(&rt, NodeId(1), 2, &[chunk]).unwrap();
        let items: Vec<u64> = (0..6).collect();
        let compute = SimDur::from_millis(35);
        pipe.run(
            &items,
            |&i, bufs| {
                rt.move_data(bufs[0], 0, file, i * chunk, chunk)?;
                Ok(())
            },
            |_, bufs| {
                rt.charge_compute(NodeId(1), ProcKind::Gpu, compute, &[bufs[0]], &[], "k")?;
                Ok(())
            },
        )
        .unwrap();
        let makespan = rt.makespan().as_secs_f64();
        let io = 6.0 * (chunk as f64 / 1.4e9);
        let comp = 6.0 * compute.as_secs_f64();
        let serial = io + comp;
        assert!(
            makespan < 0.75 * serial,
            "makespan {makespan:.3} vs serial {serial:.3}"
        );
        assert!(makespan >= io.max(comp) - 1e-9);
    }

    #[test]
    fn resume_from_checkpoint_skips_completed_items() {
        let rt = rt();
        let pipe = ChunkPipeline::new(&rt, NodeId(1), 2, &[16]).unwrap();
        let items: Vec<u32> = (0..6).collect();
        let worked = std::cell::RefCell::new(Vec::new());
        // First run is evicted after 4 items (caller stops early by
        // truncating); the resume picks up at the checkpoint.
        pipe.run(
            &items[..4],
            |_, _| Ok(()),
            |&i, _| {
                worked.borrow_mut().push(i);
                Ok(())
            },
        )
        .unwrap();
        pipe.run_from(
            crate::fabric::Checkpoint::after(4),
            &items,
            |_, _| Ok(()),
            |&i, _| {
                worked.borrow_mut().push(i);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(worked.into_inner(), items, "each chunk exactly once");
        // A checkpoint at/after the end is a no-op.
        pipe.run_from(
            crate::fabric::Checkpoint::after(6),
            &items,
            |_, _| panic!("no loads"),
            |_, _| panic!("no work"),
        )
        .unwrap();
        pipe.release().unwrap();
    }

    #[test]
    fn ring_is_clamped_to_double_buffering() {
        let rt = rt();
        let pipe = ChunkPipeline::new(&rt, NodeId(1), 1, &[8, 8]).unwrap();
        assert_eq!(pipe.ring(), 2);
        assert_eq!(pipe.node(), NodeId(1));
        pipe.release().unwrap();
    }

    #[test]
    fn empty_item_list_is_a_noop() {
        let rt = rt();
        let pipe = ChunkPipeline::new(&rt, NodeId(1), 2, &[8]).unwrap();
        pipe.run(
            &[] as &[u32],
            |_, _| panic!("no loads"),
            |_, _| panic!("no work"),
        )
        .unwrap();
        pipe.release().unwrap();
    }

    #[test]
    fn release_returns_all_capacity() {
        let rt = rt();
        let before = rt.available(NodeId(1));
        let pipe = ChunkPipeline::new(&rt, NodeId(1), 3, &[1024, 2048]).unwrap();
        assert_eq!(rt.available(NodeId(1)), before - 3 * (1024 + 2048));
        pipe.release().unwrap();
        assert_eq!(rt.available(NodeId(1)), before);
    }
}
