//! The stage-chain IR: one representation of a chunk's
//! read → link → compute → link → write-back journey, shared by every
//! execution backend.
//!
//! Northup grew two parallel execution worlds that each re-implemented
//! the same chunk lifecycle: the runtime's virtual-time pipeline
//! ([`ChunkPipeline`](crate::ChunkPipeline) over [`Runtime`](crate::Runtime)
//! resources) and the scheduler's stage-granular co-simulation
//! (`northup-sched`'s `SimFabric`). This module extracts what they share:
//!
//! * [`Stage`] — the five step kinds of a chunk's root→leaf→root journey.
//! * [`StageCost`] — what one stage costs (bytes moved or compute time).
//! * [`ChunkWork`] — the per-chunk demand shape a job declares.
//! * [`ChunkChain`] — the compiled chain: an ordered list of costed
//!   stages for one placement, repeated `chunks` times, built by
//!   [`build_chain`].
//! * [`Checkpoint`] — the resume token preemption hands back: every
//!   completed chunk is a checkpoint, so an evicted job restarts from
//!   its next unprocessed chunk — no chunk runs twice.
//! * [`Fabric`] — the backend trait. A *modeled* fabric books stages on
//!   shared virtual-time resources (`northup-sched::SimFabric`); a *real*
//!   fabric drives the same chain through a [`Runtime`](crate::Runtime)
//!   in [`ExecMode::Real`](crate::ExecMode) on the `northup-exec`
//!   work-stealing pool, with allocations metered by the job's
//!   [`CapacityLease`](crate::CapacityLease).
//!
//! The invariant that makes preemption and mode-agreement testable: a
//! chain is a pure function of (tree, leaf, work), so every backend sees
//! the *same* stages with the *same* costs, and chunk index `i` means the
//! same unit of work everywhere.

use crate::error::NorthupError;
use crate::topology::{NodeId, Tree};
use northup_sim::{SimDur, SimTime};
use std::fmt;

/// Errors from fabric execution — distinct from [`NorthupError`] so
/// backends can say *which* phase failed and callers (the scheduler, the
/// service driver) can react without string-matching.
#[derive(Debug)]
pub enum FabricError {
    /// The backing runtime rejected a data movement or compute charge
    /// while serving a chunk.
    Runtime(NorthupError),
    /// Restoring the fabric to idle failed (e.g. rebuilding a real
    /// arena's runtime and file pattern).
    Reset(NorthupError),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Runtime(e) => write!(f, "fabric chunk execution failed: {e}"),
            FabricError::Reset(e) => write!(f, "fabric reset failed: {e}"),
        }
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FabricError::Runtime(e) | FabricError::Reset(e) => Some(e),
        }
    }
}

impl From<NorthupError> for FabricError {
    fn from(e: NorthupError) -> Self {
        FabricError::Runtime(e)
    }
}

/// One step kind of a chunk's root→leaf→root journey.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Read the chunk's input bytes from the root storage.
    Read,
    /// Stage bytes down the link into the given node.
    LinkDown(NodeId),
    /// Run the leaf kernel on the given node.
    Compute(NodeId),
    /// Move result bytes up the link out of the given node.
    LinkUp(NodeId),
    /// Write result bytes back to the root storage.
    WriteBack,
}

impl Stage {
    /// The tree node whose device serves this stage (`root` for the
    /// root-storage stages). This is the failure domain of the stage:
    /// fault plans key their decisions on it, and quarantining it fences
    /// every stage it would serve.
    pub fn node(&self, root: NodeId) -> NodeId {
        match self {
            Stage::Read | Stage::WriteBack => root,
            Stage::LinkDown(hop) | Stage::LinkUp(hop) => *hop,
            Stage::Compute(leaf) => *leaf,
        }
    }
}

/// What one stage costs: bytes for transfer stages, time for compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageCost {
    /// Bytes served by a storage or link resource (zero for compute).
    pub bytes: u64,
    /// Kernel time charged to a processor (zero for transfers).
    pub compute: SimDur,
}

impl StageCost {
    /// A pure byte-movement cost.
    pub fn bytes(bytes: u64) -> Self {
        StageCost {
            bytes,
            compute: SimDur::ZERO,
        }
    }

    /// A pure compute cost.
    pub fn compute(compute: SimDur) -> Self {
        StageCost { bytes: 0, compute }
    }
}

/// One costed stage of a compiled chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainStage {
    /// The step kind.
    pub stage: Stage,
    /// Its cost on whatever resource serves it.
    pub cost: StageCost,
}

/// The per-chunk demand shape a job declares: how many bytes each chunk
/// reads from root storage, stages across each link, computes for, and
/// writes back. This is the out-of-core steady state of every Northup
/// application collapsed to its resource demand.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkWork {
    /// Bytes read from root storage per chunk.
    pub read_bytes: u64,
    /// Bytes staged across each link on the root→leaf path per chunk.
    pub xfer_bytes: u64,
    /// Leaf compute time per chunk.
    pub compute: SimDur,
    /// Bytes written back (links + root storage) per chunk.
    pub write_bytes: u64,
}

impl ChunkWork {
    /// All-zero work (compiles to an empty chain).
    pub fn new() -> Self {
        ChunkWork::default()
    }

    /// Set bytes read from root storage per chunk.
    pub fn read(mut self, bytes: u64) -> Self {
        self.read_bytes = bytes;
        self
    }

    /// Set bytes staged over each path link per chunk.
    pub fn xfer(mut self, bytes: u64) -> Self {
        self.xfer_bytes = bytes;
        self
    }

    /// Set leaf compute time per chunk.
    pub fn compute(mut self, dur: SimDur) -> Self {
        self.compute = dur;
        self
    }

    /// Set writeback bytes per chunk.
    pub fn write(mut self, bytes: u64) -> Self {
        self.write_bytes = bytes;
        self
    }

    /// True when every per-chunk cost is zero.
    pub fn is_zero(&self) -> bool {
        self.read_bytes == 0
            && self.xfer_bytes == 0
            && self.compute == SimDur::ZERO
            && self.write_bytes == 0
    }
}

/// A maximal run of consecutive chain stages served by the same tree
/// node. Schedulers that walk a chain stage-by-stage can instead book a
/// whole run against that node's resource in one pass — the run
/// boundaries are exactly where a chunk changes failure domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageRun {
    /// Index of the first stage of the run in `ChunkChain::stages`.
    pub start: u32,
    /// Number of consecutive stages in the run.
    pub len: u32,
    /// The dense tree node serving every stage of the run.
    pub node: NodeId,
}

/// A compiled stage chain: the ordered, costed stages one chunk passes
/// through when placed on `leaf`, executed `chunks` times in sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkChain {
    /// The leaf the chain is placed on.
    pub leaf: NodeId,
    /// The declared per-chunk demand the chain was compiled from.
    pub work: ChunkWork,
    /// The costed stages of one chunk, zero-cost stages skipped.
    pub stages: Vec<ChainStage>,
    /// The serving node of each stage (`stages[i]` ↔ `nodes[i]`), i.e.
    /// `stage.node(root)` precomputed as dense ids so hot schedulers
    /// never re-derive failure domains per event.
    pub nodes: Vec<NodeId>,
    /// Maximal consecutive same-node stage runs over `stages`.
    pub runs: Vec<StageRun>,
    /// How many sequential chunks the chain runs.
    pub chunks: u32,
}

impl ChunkChain {
    /// True when the chain has no bookable stages (all-zero work).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The staging node: the first hop on the root→`leaf` path (the leaf
    /// itself when it hangs directly off the root).
    pub fn staging_node(&self, tree: &Tree) -> NodeId {
        let mut cur = self.leaf;
        while let Some(p) = tree.parent(cur) {
            if p == tree.root() {
                return cur;
            }
            cur = p;
        }
        cur
    }
}

/// The resume token of chunk-granular preemption: every completed chunk
/// is a checkpoint. An evicted job holds a `Checkpoint` and later resumes
/// at `next_chunk` — chunks `0..next_chunk` ran exactly once and never
/// run again.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Checkpoint {
    /// The first chunk index that has not completed.
    pub next_chunk: u32,
}

impl Checkpoint {
    /// The checkpoint at the very start of a chain.
    pub const START: Checkpoint = Checkpoint { next_chunk: 0 };

    /// The checkpoint after `done` completed chunks.
    pub fn after(done: u32) -> Self {
        Checkpoint { next_chunk: done }
    }
}

/// Compile the stage chain for one chunk of `work` placed on `leaf`:
/// root read, link staging down every linked hop of the root→leaf path,
/// leaf compute, link write-back up the same hops, root write-back —
/// with zero-cost stages skipped. Empty when the work shape is all-zero.
///
/// Every backend must execute this exact chain, which is what makes
/// Modeled and Real runs agree on chunk counts and per-chunk semantics.
pub fn build_chain(tree: &Tree, leaf: NodeId, work: ChunkWork, chunks: u32) -> ChunkChain {
    // Path root -> leaf, excluding the root itself, so each entry names
    // the link it is reached over.
    let mut path = Vec::new();
    let mut cur = leaf;
    while let Some(p) = tree.parent(cur) {
        path.push(cur);
        cur = p;
    }
    path.reverse();

    let mut stages = Vec::new();
    if work.read_bytes > 0 {
        stages.push(ChainStage {
            stage: Stage::Read,
            cost: StageCost::bytes(work.read_bytes),
        });
    }
    if work.xfer_bytes > 0 {
        for &hop in &path {
            if tree.node(hop).link.is_some() {
                stages.push(ChainStage {
                    stage: Stage::LinkDown(hop),
                    cost: StageCost::bytes(work.xfer_bytes),
                });
            }
        }
    }
    if work.compute > SimDur::ZERO {
        stages.push(ChainStage {
            stage: Stage::Compute(leaf),
            cost: StageCost::compute(work.compute),
        });
    }
    if work.write_bytes > 0 {
        for &hop in path.iter().rev() {
            if tree.node(hop).link.is_some() {
                stages.push(ChainStage {
                    stage: Stage::LinkUp(hop),
                    cost: StageCost::bytes(work.write_bytes),
                });
            }
        }
        stages.push(ChainStage {
            stage: Stage::WriteBack,
            cost: StageCost::bytes(work.write_bytes),
        });
    }
    let root = tree.root();
    let nodes: Vec<NodeId> = stages.iter().map(|s| s.stage.node(root)).collect();
    let mut runs: Vec<StageRun> = Vec::new();
    for (i, &n) in nodes.iter().enumerate() {
        match runs.last_mut() {
            Some(r) if r.node == n => r.len += 1,
            _ => runs.push(StageRun {
                start: i as u32,
                len: 1,
                node: n,
            }),
        }
    }
    ChunkChain {
        leaf,
        work,
        stages,
        nodes,
        runs,
        chunks,
    }
}

/// An execution backend for stage chains.
///
/// Implementations agree on *what* a chunk is (the compiled
/// [`ChunkChain`]) and differ in *how* it is served: a modeled fabric
/// books the stages on shared virtual-time resources and returns the
/// booked completion; a real fabric moves actual bytes and runs actual
/// kernels, returning the virtual completion its runtime charged.
pub trait Fabric {
    /// Serve one whole chunk of `chain` (chunk index `idx`), starting no
    /// earlier than `ready`, and return its completion in virtual time.
    /// Chunks of one chain are sequential: callers pass the previous
    /// chunk's completion as the next chunk's `ready`.
    fn run_chunk(
        &mut self,
        chain: &ChunkChain,
        idx: u32,
        ready: SimTime,
    ) -> Result<SimTime, FabricError>;

    /// Restore the fabric to idle at time zero. Fallible: a real fabric
    /// rebuilds its runtime and file pattern, which can be refused.
    fn reset(&mut self) -> Result<(), FabricError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use northup_hw::catalog;

    fn tree() -> Tree {
        presets::apu_two_level(catalog::ssd_hyperx_predator())
    }

    #[test]
    fn chain_covers_the_path_and_skips_zero_cost() -> Result<(), crate::TopologyError> {
        let tree = tree();
        let leaf = tree.first_leaf()?.id;
        let work = ChunkWork::new()
            .read(1)
            .xfer(1)
            .compute(SimDur::from_micros(1))
            .write(1);
        let chain = build_chain(&tree, leaf, work, 3);
        assert_eq!(chain.chunks, 3);
        assert_eq!(chain.stages.first().map(|s| s.stage), Some(Stage::Read));
        assert_eq!(chain.stages.last().map(|s| s.stage), Some(Stage::WriteBack));
        assert!(chain.stages.iter().any(|s| s.stage == Stage::Compute(leaf)));

        let read_only = build_chain(&tree, leaf, ChunkWork::new().read(1), 1);
        assert_eq!(read_only.stages.len(), 1);
        assert_eq!(read_only.stages[0].stage, Stage::Read);

        assert!(build_chain(&tree, leaf, ChunkWork::new(), 1).is_empty());
        Ok(())
    }

    #[test]
    fn costs_attach_to_the_right_stages() -> Result<(), crate::TopologyError> {
        let tree = tree();
        let leaf = tree.first_leaf()?.id;
        let work = ChunkWork::new()
            .read(100)
            .xfer(50)
            .compute(SimDur::from_micros(7))
            .write(25);
        let chain = build_chain(&tree, leaf, work, 1);
        for cs in &chain.stages {
            match cs.stage {
                Stage::Read => assert_eq!(cs.cost.bytes, 100),
                Stage::LinkDown(_) => assert_eq!(cs.cost.bytes, 50),
                Stage::Compute(_) => assert_eq!(cs.cost.compute, SimDur::from_micros(7)),
                Stage::LinkUp(_) => assert_eq!(cs.cost.bytes, 25),
                Stage::WriteBack => assert_eq!(cs.cost.bytes, 25),
            }
        }
        Ok(())
    }

    #[test]
    fn staging_node_is_first_hop_below_root() -> Result<(), crate::TopologyError> {
        let tree = tree();
        let leaf = tree.first_leaf()?.id;
        let chain = build_chain(&tree, leaf, ChunkWork::new().read(1), 1);
        let staging = chain.staging_node(&tree);
        // On the two-level APU preset the leaf hangs directly off the root.
        assert_eq!(tree.parent(staging), Some(tree.root()));
        Ok(())
    }

    #[test]
    fn stage_nodes_name_their_failure_domain() -> Result<(), crate::TopologyError> {
        let tree = tree();
        let leaf = tree.first_leaf()?.id;
        let root = tree.root();
        let work = ChunkWork::new()
            .read(8)
            .xfer(8)
            .compute(SimDur::from_micros(1))
            .write(8);
        let chain = build_chain(&tree, leaf, work, 1);
        for cs in &chain.stages {
            let n = cs.stage.node(root);
            match cs.stage {
                Stage::Read | Stage::WriteBack => assert_eq!(n, root),
                Stage::Compute(l) => assert_eq!(n, l),
                Stage::LinkDown(h) | Stage::LinkUp(h) => assert_eq!(n, h),
            }
        }
        Ok(())
    }

    #[test]
    fn checkpoint_tokens_advance_per_chunk() {
        assert_eq!(Checkpoint::START.next_chunk, 0);
        assert_eq!(Checkpoint::after(5).next_chunk, 5);
    }

    /// The precompiled `nodes` and `runs` vectors are derived views of
    /// `stages` — the hot schedulers index them blindly, so they must
    /// stay mutually consistent for every work shape (zero-cost stages
    /// skipped, single-stage chains, deeper asymmetric trees included).
    #[test]
    fn compiled_nodes_and_runs_tile_the_stages() -> Result<(), crate::TopologyError> {
        let shapes = [
            ChunkWork::new()
                .read(8)
                .xfer(8)
                .compute(SimDur::from_micros(1))
                .write(8),
            ChunkWork::new().read(1),
            ChunkWork::new().xfer(4).compute(SimDur::from_micros(2)),
            ChunkWork::new(),
        ];
        for tree in [tree(), presets::asymmetric_fig2()] {
            let root = tree.root();
            for leaf in tree.leaves().map(|l| l.id).collect::<Vec<_>>() {
                for work in shapes {
                    let chain = build_chain(&tree, leaf, work, 1);
                    // nodes[i] is stages[i]'s failure domain, precomputed.
                    assert_eq!(chain.nodes.len(), chain.stages.len());
                    for (cs, &n) in chain.stages.iter().zip(&chain.nodes) {
                        assert_eq!(n, cs.stage.node(root));
                    }
                    // runs tile 0..stages.len() contiguously, each run is
                    // maximal (adjacent runs never share a node), and each
                    // covers stages served by exactly its node.
                    let mut next = 0u32;
                    for (i, r) in chain.runs.iter().enumerate() {
                        assert_eq!(r.start, next, "runs must tile contiguously");
                        assert!(r.len > 0, "empty run");
                        for j in r.start..r.start + r.len {
                            assert_eq!(chain.nodes[j as usize], r.node);
                        }
                        if i > 0 {
                            assert_ne!(chain.runs[i - 1].node, r.node, "run not maximal");
                        }
                        next += r.len;
                    }
                    assert_eq!(next as usize, chain.stages.len());
                }
            }
        }
        Ok(())
    }
}
