//! Per-node work queues (paper Listing 1: `list *work_queue[numQueues]`).
//!
//! "The tree node can also store the links to work queues which keep track
//! of the recursive tasks; and this allows for the implementation of load
//! balancing across different tree branches" (§III-B), and §V-E:
//! "examining the status of a subsystem can be easily accomplished by
//! checking the queue that \[is\] associated with the root of a subtree."
//!
//! [`WorkQueues`] is that bookkeeping: schedulers enqueue chunk-task tags
//! against (node, queue) slots, mark them done as the work retires, and
//! dispatchers read per-queue and per-subtree depths to steer new work.

use crate::topology::{NodeId, Tree};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Identifier of an enqueued task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u64);

/// One tracked chunk task.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskTag {
    /// Id.
    pub id: TaskId,
    /// Human-readable label ("load chunk (2,3)").
    pub label: String,
}

/// Work-queue state for every node of a tree.
#[derive(Debug, Clone)]
pub struct WorkQueues {
    /// `queues[node][q]` = pending tasks of queue `q` at `node`.
    queues: Vec<Vec<VecDeque<TaskTag>>>,
    /// Total ever enqueued per node.
    enqueued: Vec<u64>,
    /// Total completed per node.
    completed: Vec<u64>,
    next_id: u64,
}

impl WorkQueues {
    /// Queues for `tree`, `per_node` queues on every node (the paper's
    /// `numQueues`; Fig. 10 uses one per consumer).
    pub fn new(tree: &Tree, per_node: usize) -> Self {
        let per_node = per_node.max(1);
        WorkQueues {
            queues: (0..tree.len())
                .map(|_| (0..per_node).map(|_| VecDeque::new()).collect())
                .collect(),
            enqueued: vec![0; tree.len()],
            completed: vec![0; tree.len()],
            next_id: 0,
        }
    }

    /// Number of queues per node.
    pub fn queues_per_node(&self) -> usize {
        self.queues[0].len()
    }

    /// Enqueue a task tag on `(node, queue)`; returns its id.
    ///
    /// # Panics
    /// Panics on an out-of-range queue index.
    pub fn enqueue(&mut self, node: NodeId, queue: usize, label: impl Into<String>) -> TaskId {
        let id = TaskId(self.next_id);
        self.next_id += 1;
        self.queues[node.0][queue].push_back(TaskTag {
            id,
            label: label.into(),
        });
        self.enqueued[node.0] += 1;
        id
    }

    /// Complete (remove) a task wherever it sits. Returns true if found.
    pub fn complete(&mut self, node: NodeId, id: TaskId) -> bool {
        for q in &mut self.queues[node.0] {
            if let Some(pos) = q.iter().position(|t| t.id == id) {
                q.remove(pos);
                self.completed[node.0] += 1;
                return true;
            }
        }
        false
    }

    /// Pending tasks on one queue.
    pub fn depth(&self, node: NodeId, queue: usize) -> usize {
        self.queues[node.0][queue].len()
    }

    /// Pending tasks on a node (all queues).
    pub fn node_depth(&self, node: NodeId) -> usize {
        self.queues[node.0].iter().map(VecDeque::len).sum()
    }

    /// Pending tasks in the whole subtree rooted at `node` — the §V-E
    /// subsystem-status query.
    pub fn subtree_depth(&self, tree: &Tree, node: NodeId) -> usize {
        let mut total = self.node_depth(node);
        for &c in tree.children(node) {
            total += self.subtree_depth(tree, c);
        }
        total
    }

    /// The least-loaded queue index on a node (ties -> lowest index).
    pub fn shortest_queue(&self, node: NodeId) -> usize {
        self.queues[node.0]
            .iter()
            .enumerate()
            .min_by_key(|(i, q)| (q.len(), *i))
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Totals (enqueued, completed) for a node.
    pub fn totals(&self, node: NodeId) -> (u64, u64) {
        (self.enqueued[node.0], self.completed[node.0])
    }

    /// Oldest pending task of a queue (what a consumer would pop — head —
    /// or a thief would steal).
    pub fn front(&self, node: NodeId, queue: usize) -> Option<&TaskTag> {
        self.queues[node.0][queue].front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use northup_hw::catalog;

    fn tree() -> Tree {
        presets::asymmetric_fig2_with(catalog::ssd_hyperx_predator())
    }

    #[test]
    fn enqueue_complete_roundtrip() {
        let t = tree();
        let mut wq = WorkQueues::new(&t, 2);
        let id = wq.enqueue(NodeId(1), 0, "chunk 0");
        assert_eq!(wq.depth(NodeId(1), 0), 1);
        assert_eq!(wq.node_depth(NodeId(1)), 1);
        assert!(wq.complete(NodeId(1), id));
        assert!(!wq.complete(NodeId(1), id), "double-complete is false");
        assert_eq!(wq.node_depth(NodeId(1)), 0);
        assert_eq!(wq.totals(NodeId(1)), (1, 1));
    }

    #[test]
    fn subtree_depth_aggregates_branches() {
        let t = tree();
        let mut wq = WorkQueues::new(&t, 1);
        // Fig. 2 subtree 2: n2 (nvm) -> n3 (dram) -> n4 (gpu leaf).
        wq.enqueue(NodeId(2), 0, "a");
        wq.enqueue(NodeId(3), 0, "b");
        wq.enqueue(NodeId(4), 0, "c");
        wq.enqueue(NodeId(1), 0, "elsewhere");
        assert_eq!(wq.subtree_depth(&t, NodeId(2)), 3);
        assert_eq!(wq.subtree_depth(&t, NodeId(1)), 1);
        assert_eq!(wq.subtree_depth(&t, t.root()), 4);
    }

    #[test]
    fn shortest_queue_balances() {
        let t = tree();
        let mut wq = WorkQueues::new(&t, 3);
        // Deal 7 tasks always to the shortest queue: depths end 3/2/2.
        for i in 0..7 {
            let q = wq.shortest_queue(NodeId(1));
            wq.enqueue(NodeId(1), q, format!("t{i}"));
        }
        let depths: Vec<usize> = (0..3).map(|q| wq.depth(NodeId(1), q)).collect();
        assert_eq!(depths.iter().sum::<usize>(), 7);
        assert!(depths.iter().max().unwrap() - depths.iter().min().unwrap() <= 1);
    }

    #[test]
    fn front_is_fifo_order() {
        let t = tree();
        let mut wq = WorkQueues::new(&t, 1);
        let first = wq.enqueue(NodeId(1), 0, "first");
        wq.enqueue(NodeId(1), 0, "second");
        assert_eq!(wq.front(NodeId(1), 0).unwrap().id, first);
        wq.complete(NodeId(1), first);
        assert_eq!(wq.front(NodeId(1), 0).unwrap().label, "second");
    }
}
