//! The unified data-management interface (paper Table I, Listing 4).
//!
//! All buffers, regardless of which device holds them, are referred to by
//! the same opaque [`BufferHandle`] — the Rust-safe counterpart of the
//! paper's `void *` ("the key is that all buffers are associated with the
//! same opaque type for portability"). `alloc` on a file-type node creates
//! a real file; on memory/device nodes it takes heap storage. `move_data`
//! examines the storage classes of the two tree nodes involved and
//! internally dispatches to the right mechanism — file I/O, DMA memcpy, or
//! a device transfer over the connecting link — exactly Listing 4's switch
//! on `fetch_node_type`.
//!
//! Every operation is also scheduled in virtual time with dataflow
//! dependencies:
//!
//! * a buffer's `ready_at` is when its current content exists;
//! * its `last_read_end` is when its last consumer finishes (WAR hazard);
//! * an operation starts at the max of its dependencies and is served FIFO
//!   by the hardware resource it uses.
//!
//! Reusing a small ring of staging buffers therefore produces exactly the
//! bounded-capacity pipelining of the paper's multi-stage task queues:
//! chunk `i+1`'s load overlaps chunk `i`'s compute, but only as far as
//! staging capacity allows.

use crate::error::{NorthupError, Result};
use crate::runtime::{ExecMode, RtInner, Runtime};
use crate::topology::{NodeId, ProcKind};
use northup_hw::{BlockId, Dir, StorageClass};
use northup_sim::{transfer_time, Category, Served, SimDur, SimTime};

/// Opaque reference to an allocation on some tree node (the paper's
/// `void *` made type- and lifetime-safe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferHandle(pub(crate) u64);

/// Runtime-internal buffer bookkeeping.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BufInfo {
    pub node: NodeId,
    pub block: BlockId,
    pub size: u64,
    /// Virtual time at which the buffer's current content is fully written.
    pub ready_at: SimTime,
    /// Virtual time at which the last read of this buffer completes.
    pub last_read_end: SimTime,
}

fn check_range(h: BufferHandle, info: &BufInfo, offset: u64, len: u64) -> Result<()> {
    if offset.checked_add(len).is_none_or(|end| end > info.size) {
        return Err(NorthupError::BadRange {
            buffer: h,
            offset,
            len,
            size: info.size,
        });
    }
    Ok(())
}

impl RtInner {
    fn info(&self, h: BufferHandle) -> Result<BufInfo> {
        self.buffers
            .get(&h.0)
            .copied()
            .ok_or(NorthupError::UnknownBuffer(h))
    }
}

impl Runtime {
    /// Table I: `alloc(size, tree_node)` — allocate space on a memory or
    /// storage node. On file-class nodes this creates a real scratch file;
    /// fresh allocations read as zeros everywhere.
    pub fn alloc(&self, size: u64, node: NodeId) -> Result<BufferHandle> {
        self.tree().try_node(node)?;
        let class = self.tree().storage_class(node);
        let cost = self.setup_costs().alloc(class);
        let mut g = self.inner.lock();
        let lease = g.lease.clone();
        if let Some(lease) = &lease {
            lease
                .try_charge(node, size)
                .map_err(|remaining| NorthupError::LeaseExceeded {
                    node,
                    requested: size,
                    remaining,
                })?;
        }
        let block = match g.backends[node.0].alloc(size) {
            Ok(block) => block,
            Err(e) => {
                if let Some(lease) = &lease {
                    lease.credit(node, size);
                }
                return Err(NorthupError::Hw(e));
            }
        };
        let served = g.node_res[node.0].serve_for(SimTime::ZERO, cost);
        g.timeline.record(
            served.start,
            served.end,
            Category::BufferSetup,
            format!("alloc {size}B @{node}"),
        );
        let h = BufferHandle(g.next_handle);
        g.next_handle += 1;
        g.buffers.insert(
            h.0,
            BufInfo {
                node,
                block,
                size,
                ready_at: served.end,
                last_read_end: served.end,
            },
        );
        if let Some(lease) = lease {
            g.charged.insert(h.0, lease);
        }
        g.dag_record(
            &format!("alloc {size}B @{node}"),
            Category::BufferSetup,
            served.duration(),
            &[],
            &[h],
        );
        Ok(h)
    }

    /// Table I: `release(ptr)` — free the storage behind a handle. Waits (in
    /// virtual time) for the buffer's outstanding uses.
    pub fn release(&self, h: BufferHandle) -> Result<()> {
        let mut g = self.inner.lock();
        let info = g.info(h)?;
        let class = self.tree().storage_class(info.node);
        let cost = self.setup_costs().release(class);
        let ready = info.ready_at.max(info.last_read_end);
        let served = g.node_res[info.node.0].serve_for(ready, cost);
        g.timeline.record(
            served.start,
            served.end,
            Category::BufferSetup,
            format!("release @{}", info.node),
        );
        g.dag_record(
            &format!("release @{}", info.node),
            Category::BufferSetup,
            served.duration(),
            &[h],
            &[],
        );
        g.backends[info.node.0].release(info.block)?;
        g.buffers.remove(&h.0);
        if let Some(lease) = g.charged.remove(&h.0) {
            lease.credit(info.node, info.size);
        }
        Ok(())
    }

    /// The tree node a buffer lives on.
    pub fn buffer_node(&self, h: BufferHandle) -> Result<NodeId> {
        Ok(self.inner.lock().info(h)?.node)
    }

    /// A buffer's size in bytes.
    pub fn buffer_size(&self, h: BufferHandle) -> Result<u64> {
        Ok(self.inner.lock().info(h)?.size)
    }

    /// Virtual time at which a buffer's content is ready.
    pub fn buffer_ready_at(&self, h: BufferHandle) -> Result<SimTime> {
        Ok(self.inner.lock().info(h)?.ready_at)
    }

    /// Table I: `move_data(dst, src, size, offset, dst_tree_node,
    /// src_tree_node)` — move `len` bytes between two buffers on the same
    /// node or on adjacent tree nodes. The dispatch on storage classes
    /// (file I/O vs memcpy vs device transfer) is internal.
    pub fn move_data(
        &self,
        dst: BufferHandle,
        dst_off: u64,
        src: BufferHandle,
        src_off: u64,
        len: u64,
    ) -> Result<Served> {
        let mut g = self.inner.lock();
        let si = g.info(src)?;
        let di = g.info(dst)?;
        check_range(src, &si, src_off, len)?;
        check_range(dst, &di, dst_off, len)?;

        if si.node != di.node && !self.tree().adjacent(si.node, di.node) {
            return Err(NorthupError::NotAdjacent(si.node, di.node));
        }

        let ready = si.ready_at.max(di.ready_at).max(di.last_read_end);
        let served = self.schedule_transfer(&mut g, si.node, di.node, len, ready)?;

        // Real byte movement (skipped in Modeled mode).
        if self.mode() == ExecMode::Real && len > 0 {
            let mut tmp = vec![0u8; len as usize];
            g.backends[si.node.0].read(si.block, src_off, &mut tmp)?;
            g.backends[di.node.0].write(di.block, dst_off, &tmp)?;
        }

        let s = g
            .buffers
            .get_mut(&src.0)
            .ok_or(NorthupError::UnknownBuffer(src))?;
        s.last_read_end = s.last_read_end.max(served.end);
        let d = g
            .buffers
            .get_mut(&dst.0)
            .ok_or(NorthupError::UnknownBuffer(dst))?;
        d.ready_at = served.end;
        d.last_read_end = d.last_read_end.max(served.end);
        g.dag_record(
            &format!("move {len}B {}->{}", si.node, di.node),
            Category::MemCopy,
            served.duration(),
            &[src],
            &[dst],
        );
        Ok(served)
    }

    /// Table I: `move_data_down(dst, src, size, offset, i)` — `src` must
    /// live on `parent`, `dst` on one of its children.
    pub fn move_data_down(
        &self,
        parent: NodeId,
        dst: BufferHandle,
        dst_off: u64,
        src: BufferHandle,
        src_off: u64,
        len: u64,
    ) -> Result<Served> {
        let sn = self.buffer_node(src)?;
        let dn = self.buffer_node(dst)?;
        if sn != parent {
            return Err(NorthupError::WrongNode {
                actual: sn,
                expected: parent,
            });
        }
        if self.tree().parent(dn) != Some(parent) {
            return Err(NorthupError::NotAdjacent(parent, dn));
        }
        self.move_data(dst, dst_off, src, src_off, len)
    }

    /// Table I: `move_data_up(dst, src, size, offset)` — `src` must live on
    /// a child of the node holding `dst`.
    pub fn move_data_up(
        &self,
        child: NodeId,
        dst: BufferHandle,
        dst_off: u64,
        src: BufferHandle,
        src_off: u64,
        len: u64,
    ) -> Result<Served> {
        let sn = self.buffer_node(src)?;
        let dn = self.buffer_node(dst)?;
        if sn != child {
            return Err(NorthupError::WrongNode {
                actual: sn,
                expected: child,
            });
        }
        if self.tree().parent(child) != Some(dn) {
            return Err(NorthupError::NotAdjacent(child, dn));
        }
        self.move_data(dst, dst_off, src, src_off, len)
    }

    /// Strided variant of [`move_data`](Self::move_data): move `rows` runs
    /// of `row_len` bytes, advancing the source offset by `src_stride` and
    /// the destination offset by `dst_stride` per run. Used for rectangular
    /// sub-blocks of row-major matrices (HotSpot halo regions, GEMM column
    /// shards). Charged as one transfer of `rows * row_len` bytes — the
    /// paper's border *packing* keeps the device-visible I/O contiguous.
    #[allow(clippy::too_many_arguments)]
    pub fn move_data_strided(
        &self,
        dst: BufferHandle,
        dst_off: u64,
        dst_stride: u64,
        src: BufferHandle,
        src_off: u64,
        src_stride: u64,
        row_len: u64,
        rows: u64,
    ) -> Result<Served> {
        let mut g = self.inner.lock();
        let si = g.info(src)?;
        let di = g.info(dst)?;
        if rows > 0 {
            let src_span = src_stride
                .checked_mul(rows - 1)
                .and_then(|v| v.checked_add(row_len))
                .ok_or(NorthupError::BadRange {
                    buffer: src,
                    offset: src_off,
                    len: u64::MAX,
                    size: si.size,
                })?;
            let dst_span = dst_stride
                .checked_mul(rows - 1)
                .and_then(|v| v.checked_add(row_len))
                .ok_or(NorthupError::BadRange {
                    buffer: dst,
                    offset: dst_off,
                    len: u64::MAX,
                    size: di.size,
                })?;
            check_range(src, &si, src_off, src_span)?;
            check_range(dst, &di, dst_off, dst_span)?;
        }

        if si.node != di.node && !self.tree().adjacent(si.node, di.node) {
            return Err(NorthupError::NotAdjacent(si.node, di.node));
        }

        let total = row_len * rows;
        let ready = si.ready_at.max(di.ready_at).max(di.last_read_end);
        let served = self.schedule_transfer(&mut g, si.node, di.node, total, ready)?;

        if self.mode() == ExecMode::Real && total > 0 {
            let mut tmp = vec![0u8; row_len as usize];
            for r in 0..rows {
                g.backends[si.node.0].read(si.block, src_off + r * src_stride, &mut tmp)?;
                g.backends[di.node.0].write(di.block, dst_off + r * dst_stride, &tmp)?;
            }
        }

        let s = g
            .buffers
            .get_mut(&src.0)
            .ok_or(NorthupError::UnknownBuffer(src))?;
        s.last_read_end = s.last_read_end.max(served.end);
        let d = g
            .buffers
            .get_mut(&dst.0)
            .ok_or(NorthupError::UnknownBuffer(dst))?;
        d.ready_at = served.end;
        d.last_read_end = d.last_read_end.max(served.end);
        g.dag_record(
            &format!("move-strided {}B {}->{}", total, si.node, di.node),
            Category::MemCopy,
            served.duration(),
            &[src],
            &[dst],
        );
        Ok(served)
    }

    /// Schedule the virtual-time service of a transfer and record it. The
    /// dispatch table of Listing 4:
    ///
    /// | src, dst classes        | mechanism / resource         | category |
    /// |-------------------------|------------------------------|----------|
    /// | file -> X               | read on the file device      | FileIo   |
    /// | X -> file               | write on the file device     | FileIo   |
    /// | device on either side   | DMA over the connecting link | DeviceTransfer |
    /// | memory <-> memory       | memcpy/DMA (link or device)  | MemCopy  |
    fn schedule_transfer(
        &self,
        g: &mut RtInner,
        src_node: NodeId,
        dst_node: NodeId,
        len: u64,
        ready: SimTime,
    ) -> Result<Served> {
        let tree = self.tree();
        let sc = tree.storage_class(src_node);
        let dc = tree.storage_class(dst_node);
        let label = format!("{src_node}->{dst_node} {len}B");

        // File endpoints dominate the dispatch: the storage device is the
        // bottleneck and the I/O tracker must see the bytes.
        let mut served: Option<Served> = None;
        let mut category = Category::MemCopy;

        if sc == StorageClass::File {
            let spec = &tree.node(src_node).mem;
            let dur = transfer_time(len, spec.read_bw, spec.read_latency);
            let s = g.node_res[src_node.0].serve_for(ready, dur);
            g.io.record(&spec.name, Dir::Read, len);
            category = Category::FileIo;
            served = Some(s);
        }
        if dc == StorageClass::File {
            let spec = &tree.node(dst_node).mem;
            let dur = transfer_time(len, spec.write_bw, spec.write_latency);
            let start_ready = served.map(|s| s.end).unwrap_or(ready);
            let s = g.node_res[dst_node.0].serve_for(start_ready, dur);
            g.io.record(&spec.name, Dir::Write, len);
            category = Category::FileIo;
            served = Some(match served {
                Some(first) => Served {
                    start: first.start,
                    end: s.end,
                },
                None => s,
            });
        }

        let served = match served {
            Some(s) => s,
            None => {
                // No file endpoint: link transfer (or intra-node copy).
                if src_node == dst_node {
                    let spec = &tree.node(src_node).mem;
                    // Read + write pass over the same device.
                    let dur = transfer_time(2 * len, spec.read_bw, SimDur::ZERO);
                    category = match sc {
                        StorageClass::Device => Category::DeviceTransfer,
                        _ => Category::MemCopy,
                    };
                    g.node_res[src_node.0].serve_for(ready, dur)
                } else {
                    let link = g.link_res[src_node.0]
                        .is_some()
                        .then_some(src_node)
                        .filter(|&n| tree.parent(n) == Some(dst_node))
                        .or_else(|| (tree.parent(dst_node) == Some(src_node)).then_some(dst_node))
                        .ok_or(NorthupError::NotAdjacent(src_node, dst_node))?;
                    category = if sc == StorageClass::Device || dc == StorageClass::Device {
                        Category::DeviceTransfer
                    } else {
                        Category::MemCopy
                    };
                    let res = g.link_res[link.0]
                        .as_mut()
                        .ok_or(NorthupError::NotAdjacent(src_node, dst_node))?;
                    res.serve_bytes(ready, len)
                }
            }
        };

        g.timeline.record(served.start, served.end, category, label);
        Ok(served)
    }

    /// Inject host data into a buffer (preprocessing — not charged to the
    /// measured run, like the paper's one-time input reorganization, §V-B).
    pub fn write_slice(&self, h: BufferHandle, offset: u64, data: &[u8]) -> Result<()> {
        let mut g = self.inner.lock();
        let info = g.info(h)?;
        check_range(h, &info, offset, data.len() as u64)?;
        g.backends[info.node.0].write(info.block, offset, data)?;
        Ok(())
    }

    /// Extract buffer contents to the host (verification — not charged).
    pub fn read_slice(&self, h: BufferHandle, offset: u64, out: &mut [u8]) -> Result<()> {
        let mut g = self.inner.lock();
        let info = g.info(h)?;
        check_range(h, &info, offset, out.len() as u64)?;
        g.backends[info.node.0].read(info.block, offset, out)?;
        Ok(())
    }

    /// Charge a leaf computation of duration `dur` on the processor of
    /// `kind` attached to `node`, reading `reads` and producing `writes`.
    /// Returns the scheduled interval.
    pub fn charge_compute(
        &self,
        node: NodeId,
        kind: ProcKind,
        dur: SimDur,
        reads: &[BufferHandle],
        writes: &[BufferHandle],
        label: &str,
    ) -> Result<Served> {
        let pi = self.proc_index(node, kind)?;
        let mut g = self.inner.lock();
        let mut ready = SimTime::ZERO;
        for &h in reads {
            ready = ready.max(g.info(h)?.ready_at);
        }
        for &h in writes {
            let info = g.info(h)?;
            ready = ready.max(info.ready_at).max(info.last_read_end);
        }
        let served = g.proc_res[node.0][pi].serve_for(ready, dur);
        let category = match kind {
            ProcKind::Cpu => Category::CpuCompute,
            ProcKind::Gpu | ProcKind::Fpga => Category::GpuCompute,
        };
        g.timeline.record(served.start, served.end, category, label);
        for &h in reads {
            let b = g
                .buffers
                .get_mut(&h.0)
                .ok_or(NorthupError::UnknownBuffer(h))?;
            b.last_read_end = b.last_read_end.max(served.end);
        }
        for &h in writes {
            let b = g
                .buffers
                .get_mut(&h.0)
                .ok_or(NorthupError::UnknownBuffer(h))?;
            b.ready_at = served.end;
            b.last_read_end = b.last_read_end.max(served.end);
        }
        g.dag_record(label, category, served.duration(), reads, writes);
        Ok(served)
    }

    /// Available capacity on a node — the quantity blocking-size decisions
    /// read ("by examining the capacity and usage, a program can decide the
    /// blocking size", §III-B).
    pub fn available(&self, node: NodeId) -> u64 {
        self.inner.lock().backends[node.0].available()
    }

    /// Used bytes on a node.
    pub fn used(&self, node: NodeId) -> u64 {
        self.inner.lock().backends[node.0].used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use northup_hw::catalog;
    use northup_sim::Category;

    fn rt() -> Runtime {
        Runtime::new(
            presets::apu_two_level(catalog::ssd_hyperx_predator()),
            ExecMode::Real,
        )
        .unwrap()
    }

    #[test]
    fn alloc_move_release_roundtrip() {
        let rt = rt();
        let root = rt.tree().root(); // SSD (file)
        let dram = NodeId(1);
        let a = rt.alloc(64, root).unwrap();
        let b = rt.alloc(64, dram).unwrap();
        rt.write_slice(a, 0, &[7u8; 64]).unwrap();
        rt.move_data(b, 0, a, 0, 64).unwrap();
        let mut out = [0u8; 64];
        rt.read_slice(b, 0, &mut out).unwrap();
        assert_eq!(out, [7u8; 64]);
        rt.release(a).unwrap();
        rt.release(b).unwrap();
        assert_eq!(rt.used(root), 0);
        assert_eq!(rt.used(dram), 0);
    }

    #[test]
    fn file_moves_are_charged_as_io_and_tracked() {
        let rt = rt();
        let a = rt.alloc(1_000_000, rt.tree().root()).unwrap();
        let b = rt.alloc(1_000_000, NodeId(1)).unwrap();
        rt.move_data(b, 0, a, 0, 1_000_000).unwrap(); // storage -> DRAM: read
        rt.move_data(a, 0, b, 0, 1_000_000).unwrap(); // DRAM -> storage: write
        let report = rt.report();
        assert!(report.breakdown.get(Category::FileIo) > SimDur::ZERO);
        let io = rt.io_totals("hyperx-predator");
        assert_eq!(io.bytes_read, 1_000_000);
        assert_eq!(io.bytes_written, 1_000_000);
        // Read at 1400 MB/s is faster than write at 600 MB/s.
        let t_read = 1e6 / 1.4e9;
        let t_write = 1e6 / 0.6e9;
        let io_busy = report.breakdown.get(Category::FileIo).as_secs_f64();
        let expect = t_read
            + t_write
            + catalog::ssd_hyperx_predator().read_latency.as_secs_f64()
            + catalog::ssd_hyperx_predator().write_latency.as_secs_f64();
        assert!((io_busy - expect).abs() < 1e-6, "{io_busy} vs {expect}");
    }

    #[test]
    fn non_adjacent_moves_are_rejected() {
        let tree = presets::discrete_gpu_three_level(catalog::ssd_hyperx_predator());
        let rt = Runtime::new(tree, ExecMode::Real).unwrap();
        let a = rt.alloc(16, NodeId(0)).unwrap();
        let c = rt.alloc(16, NodeId(2)).unwrap();
        match rt.move_data(c, 0, a, 0, 16) {
            Err(NorthupError::NotAdjacent(x, y)) => {
                assert_eq!((x, y), (NodeId(0), NodeId(2)));
            }
            other => panic!("expected NotAdjacent, got {other:?}"),
        }
    }

    #[test]
    fn device_transfers_use_the_link_and_category() {
        let tree = presets::discrete_gpu_three_level(catalog::hdd_wd5000());
        let rt = Runtime::new(tree, ExecMode::Real).unwrap();
        let dram = rt.alloc(1 << 20, NodeId(1)).unwrap();
        let dev = rt.alloc(1 << 20, NodeId(2)).unwrap();
        rt.move_data(dev, 0, dram, 0, 1 << 20).unwrap();
        let report = rt.report();
        assert!(report.breakdown.get(Category::DeviceTransfer) > SimDur::ZERO);
        assert_eq!(report.breakdown.get(Category::FileIo), SimDur::ZERO);
    }

    #[test]
    fn pipelining_overlaps_io_and_compute() {
        // Two staging buffers: load(1) || compute(0) must overlap, so the
        // makespan is less than the serial sum.
        let rt = rt();
        let root = rt.tree().root();
        let dram = NodeId(1);
        let size = 100_000_000u64; // 100 MB => ~71 ms read
        let src = rt.alloc(2 * size, root).unwrap();
        let s0 = rt.alloc(size, dram).unwrap();
        let s1 = rt.alloc(size, dram).unwrap();
        let compute = SimDur::from_millis(70);

        rt.move_data(s0, 0, src, 0, size).unwrap();
        rt.charge_compute(dram, ProcKind::Gpu, compute, &[s0], &[s0], "k0")
            .unwrap();
        rt.move_data(s1, 0, src, size, size).unwrap();
        let done = rt
            .charge_compute(dram, ProcKind::Gpu, compute, &[s1], &[s1], "k1")
            .unwrap();

        let serial = 2.0 * (size as f64 / 1.4e9) + 2.0 * compute.as_secs_f64();
        let got = done.end.as_secs_f64();
        assert!(
            got < serial - 0.05,
            "pipelined {got:.3}s should beat serial {serial:.3}s"
        );
    }

    #[test]
    fn war_hazard_serializes_buffer_reuse() {
        // One staging buffer: the second load must wait for the first
        // compute to finish reading it.
        let rt = rt();
        let root = rt.tree().root();
        let dram = NodeId(1);
        let size = 10_000_000u64;
        let src = rt.alloc(2 * size, root).unwrap();
        let s = rt.alloc(size, dram).unwrap();
        let compute = SimDur::from_millis(50);

        rt.move_data(s, 0, src, 0, size).unwrap();
        let k0 = rt
            .charge_compute(dram, ProcKind::Gpu, compute, &[s], &[], "k0")
            .unwrap();
        let load2 = rt.move_data(s, 0, src, size, size).unwrap();
        assert!(
            load2.start >= k0.end,
            "overwrite at {} must wait for reader until {}",
            load2.start,
            k0.end
        );
    }

    #[test]
    fn modeled_mode_moves_no_bytes_but_charges_time() {
        let rt = Runtime::new(
            presets::apu_two_level(catalog::ssd_hyperx_predator()),
            ExecMode::Modeled,
        )
        .unwrap();
        // 4 GiB "allocation" is fine in modeled mode.
        let a = rt.alloc(4 << 30, rt.tree().root()).unwrap();
        let b = rt.alloc(1 << 30, NodeId(1)).unwrap();
        rt.move_data(b, 0, a, 0, 1 << 30).unwrap();
        let t = rt.report().breakdown.get(Category::FileIo).as_secs_f64();
        assert!((t - (1u64 << 30) as f64 / 1.4e9).abs() < 1e-3, "{t}");
    }

    #[test]
    fn bad_ranges_and_unknown_buffers_error() {
        let rt = rt();
        let a = rt.alloc(10, rt.tree().root()).unwrap();
        let b = rt.alloc(10, NodeId(1)).unwrap();
        assert!(matches!(
            rt.move_data(b, 8, a, 0, 4),
            Err(NorthupError::BadRange { .. })
        ));
        rt.release(a).unwrap();
        assert!(matches!(
            rt.move_data(b, 0, a, 0, 1),
            Err(NorthupError::UnknownBuffer(_))
        ));
    }

    #[test]
    fn move_down_and_up_validate_direction() {
        let rt = rt();
        let root = rt.tree().root();
        let dram = NodeId(1);
        let top = rt.alloc(32, root).unwrap();
        let bot = rt.alloc(32, dram).unwrap();
        rt.move_data_down(root, bot, 0, top, 0, 32).unwrap();
        rt.move_data_up(dram, top, 0, bot, 0, 32).unwrap();
        // Wrong direction: src not on the stated parent.
        assert!(matches!(
            rt.move_data_down(dram, bot, 0, top, 0, 32),
            Err(NorthupError::WrongNode { .. })
        ));
    }

    #[test]
    fn strided_move_extracts_a_sub_block() {
        let rt = rt();
        let root = rt.tree().root();
        let dram = NodeId(1);
        // A 4x4 byte matrix on storage; pull the center 2x2.
        let src = rt.alloc(16, root).unwrap();
        let grid: Vec<u8> = (0..16).collect();
        rt.write_slice(src, 0, &grid).unwrap();
        let dst = rt.alloc(4, dram).unwrap();
        rt.move_data_strided(dst, 0, 2, src, 5, 4, 2, 2).unwrap();
        let mut out = [0u8; 4];
        rt.read_slice(dst, 0, &mut out).unwrap();
        assert_eq!(out, [5, 6, 9, 10]);
        // Charged as one 4-byte file read.
        assert_eq!(rt.io_totals("hyperx-predator").read_ops, 1);
        assert_eq!(rt.io_totals("hyperx-predator").bytes_read, 4);
    }

    #[test]
    fn strided_move_rejects_overrun() {
        let rt = rt();
        let src = rt.alloc(16, rt.tree().root()).unwrap();
        let dst = rt.alloc(4, NodeId(1)).unwrap();
        // Last run would read bytes 13..17.
        assert!(matches!(
            rt.move_data_strided(dst, 0, 2, src, 5, 4, 2, 3),
            Err(NorthupError::BadRange { .. })
        ));
    }

    #[test]
    fn capacity_accounting_via_available() {
        let rt = rt();
        let dram = NodeId(1);
        let before = rt.available(dram);
        let h = rt.alloc(1 << 20, dram).unwrap();
        assert_eq!(rt.available(dram), before - (1 << 20));
        rt.release(h).unwrap();
        assert_eq!(rt.available(dram), before);
    }

    #[test]
    fn compute_requires_matching_processor() {
        let tree = presets::discrete_gpu_three_level(catalog::hdd_wd5000());
        let rt = Runtime::new(tree, ExecMode::Real).unwrap();
        // GPU is on node 2, not node 1.
        assert!(matches!(
            rt.charge_compute(
                NodeId(1),
                ProcKind::Gpu,
                SimDur::from_millis(1),
                &[],
                &[],
                "x"
            ),
            Err(NorthupError::NoProcessor(_))
        ));
        rt.charge_compute(
            NodeId(1),
            ProcKind::Cpu,
            SimDur::from_millis(1),
            &[],
            &[],
            "x",
        )
        .unwrap();
    }
}
