//! Task-dependency-graph unfolding (paper §III-C, future work).
//!
//! "The recursive tree can be further unfolded to a dependency graph to
//! exploit more parallelism, which we leave for future work." This module
//! implements that unfolding: when enabled, the runtime records every
//! operation (alloc, move, compute, release) as a DAG node whose incoming
//! edges are the true dataflow dependencies (read-after-write) and
//! anti-dependencies (write-after-read / write-after-write) on buffers.
//!
//! The resulting [`TaskDag`] supports:
//!
//! * DOT export for visualization;
//! * **critical-path analysis** — the makespan a scheduler with unlimited
//!   resources could reach, i.e. the dependency-imposed lower bound;
//! * comparison against the FIFO makespan the runtime actually produced,
//!   quantifying exactly how much extra parallelism a dependency-graph
//!   scheduler could exploit over the paper's in-order task queues.

use crate::data::BufferHandle;
use northup_sim::{Category, SimDur};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// One recorded operation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DagNode {
    /// Node id (== index; ids are topologically ordered by construction).
    pub id: u32,
    /// Human-readable label ("load chunk (2,3)").
    pub label: String,
    /// Activity category.
    pub category: Category,
    /// Service duration of the operation.
    pub duration: SimDur,
}

/// The unfolded dependency graph.
///
/// ```
/// use northup::{presets, ExecMode, NodeId, ProcKind, Runtime};
/// use northup_hw::catalog;
/// use northup_sim::SimDur;
///
/// let rt = Runtime::new(
///     presets::apu_two_level(catalog::ssd_hyperx_predator()),
///     ExecMode::Real,
/// ).unwrap();
/// rt.enable_dag();
/// let a = rt.alloc(64, NodeId(0)).unwrap();
/// let b = rt.alloc(64, NodeId(1)).unwrap();
/// rt.move_data(b, 0, a, 0, 64).unwrap();
/// rt.charge_compute(NodeId(1), ProcKind::Gpu, SimDur::from_micros(10),
///                   &[b], &[b], "k").unwrap();
///
/// let dag = rt.task_dag();
/// assert_eq!(dag.len(), 4); // two allocs, one move, one compute
/// let (cp, path) = dag.critical_path();
/// assert!(cp > SimDur::ZERO && !path.is_empty());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TaskDag {
    /// Operations, in issue order (a valid topological order).
    pub nodes: Vec<DagNode>,
    /// Edges `(from, to)` with `from < to`.
    pub edges: Vec<(u32, u32)>,
}

impl TaskDag {
    /// Number of operations.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no operations were recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Direct predecessors of each node.
    fn preds(&self) -> Vec<Vec<u32>> {
        let mut p = vec![Vec::new(); self.nodes.len()];
        for &(a, b) in &self.edges {
            p[b as usize].push(a);
        }
        p
    }

    /// Critical path: the dependency-imposed lower bound on the makespan
    /// (infinite resources), and one path achieving it (node ids, in order).
    pub fn critical_path(&self) -> (SimDur, Vec<u32>) {
        let preds = self.preds();
        let mut finish = vec![SimDur::ZERO; self.nodes.len()];
        let mut via: Vec<Option<u32>> = vec![None; self.nodes.len()];
        let mut best_end = SimDur::ZERO;
        let mut best_node = None;
        for (i, node) in self.nodes.iter().enumerate() {
            let mut start = SimDur::ZERO;
            for &p in &preds[i] {
                if finish[p as usize] > start {
                    start = finish[p as usize];
                    via[i] = Some(p);
                }
            }
            finish[i] = start + node.duration;
            if finish[i] > best_end {
                best_end = finish[i];
                best_node = Some(i as u32);
            }
        }
        let mut path = Vec::new();
        let mut cur = best_node;
        while let Some(n) = cur {
            path.push(n);
            cur = via[n as usize];
        }
        path.reverse();
        (best_end, path)
    }

    /// Sum of all operation durations (the serial lower bound's complement:
    /// the single-resource upper bound).
    pub fn total_work(&self) -> SimDur {
        self.nodes.iter().map(|n| n.duration).sum()
    }

    /// Average parallelism available in the graph: total work over the
    /// critical path length.
    pub fn parallelism(&self) -> f64 {
        let (cp, _) = self.critical_path();
        let cp = cp.as_secs_f64();
        if cp == 0.0 {
            return 0.0;
        }
        self.total_work().as_secs_f64() / cp
    }

    /// How much faster an ideal dependency-graph scheduler could be than an
    /// observed makespan: `observed / critical_path` (>= 1).
    pub fn headroom(&self, observed: SimDur) -> f64 {
        let (cp, _) = self.critical_path();
        if cp.is_zero() {
            return 1.0;
        }
        (observed.as_secs_f64() / cp.as_secs_f64()).max(1.0)
    }

    /// Per-category node counts (sanity/reporting), in stable label order.
    pub fn category_histogram(&self) -> BTreeMap<&'static str, usize> {
        let mut h = BTreeMap::new();
        for n in &self.nodes {
            *h.entry(n.category.label()).or_insert(0) += 1;
        }
        h
    }

    /// Graphviz DOT rendering (critical-path nodes highlighted).
    pub fn render_dot(&self) -> String {
        let (_, cp) = self.critical_path();
        let on_cp: BTreeSet<u32> = cp.into_iter().collect();
        let mut out = String::from("digraph tasks {\n  rankdir=LR;\n");
        for n in &self.nodes {
            let style = if on_cp.contains(&n.id) {
                " style=filled fillcolor=lightcoral"
            } else {
                ""
            };
            out.push_str(&format!(
                "  t{} [label=\"{}\\n{} {}\"{}];\n",
                n.id,
                n.label.replace('"', "'"),
                n.category.label(),
                n.duration,
                style
            ));
        }
        for &(a, b) in &self.edges {
            out.push_str(&format!("  t{a} -> t{b};\n"));
        }
        out.push_str("}\n");
        out
    }
}

/// Runtime-internal DAG recorder.
#[derive(Debug, Default)]
pub(crate) struct DagRecorder {
    dag: TaskDag,
    /// Last writer of each live buffer. Ordered so DAG construction (and
    /// thus DOT output) is identical run to run.
    writer: BTreeMap<u64, u32>,
    /// Readers of each buffer since its last write.
    readers: BTreeMap<u64, Vec<u32>>,
}

impl DagRecorder {
    pub(crate) fn record(
        &mut self,
        label: &str,
        category: Category,
        duration: SimDur,
        reads: &[BufferHandle],
        writes: &[BufferHandle],
    ) {
        let id = self.dag.nodes.len() as u32;
        let mut deps: Vec<u32> = Vec::new();
        for h in reads {
            if let Some(&w) = self.writer.get(&h.0) {
                deps.push(w);
            }
        }
        for h in writes {
            // True WAW dependency on the previous writer...
            if let Some(&w) = self.writer.get(&h.0) {
                deps.push(w);
            }
            // ...and WAR anti-dependencies on outstanding readers.
            if let Some(rs) = self.readers.get(&h.0) {
                deps.extend(rs.iter().copied());
            }
        }
        deps.sort_unstable();
        deps.dedup();
        for d in deps {
            if d != id {
                self.dag.edges.push((d, id));
            }
        }
        self.dag.nodes.push(DagNode {
            id,
            label: label.to_string(),
            category,
            duration,
        });
        for h in reads {
            self.readers.entry(h.0).or_default().push(id);
        }
        for h in writes {
            self.writer.insert(h.0, id);
            self.readers.insert(h.0, Vec::new());
        }
    }

    pub(crate) fn snapshot(&self) -> TaskDag {
        self.dag.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node_dag(chains: &[&[(u64, u64)]]) -> TaskDag {
        // Each chain is a list of (duration_ms, buffer): ops write their
        // buffer and read the previous op's buffer in the chain.
        let mut rec = DagRecorder::default();
        for chain in chains {
            let mut prev: Option<BufferHandle> = None;
            for &(ms, buf) in *chain {
                let reads: Vec<BufferHandle> = prev.into_iter().collect();
                rec.record(
                    "op",
                    Category::Runtime,
                    SimDur::from_millis(ms),
                    &reads,
                    &[BufferHandle(buf)],
                );
                prev = Some(BufferHandle(buf));
            }
        }
        rec.snapshot()
    }

    #[test]
    fn critical_path_of_a_chain_is_its_sum() {
        let dag = node_dag(&[&[(10, 0), (20, 1), (30, 2)]]);
        let (cp, path) = dag.critical_path();
        assert_eq!(cp, SimDur::from_millis(60));
        assert_eq!(path, vec![0, 1, 2]);
        assert!((dag.parallelism() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn independent_chains_run_in_parallel() {
        let dag = node_dag(&[&[(10, 0), (10, 1)], &[(15, 10), (15, 11)]]);
        let (cp, _) = dag.critical_path();
        assert_eq!(cp, SimDur::from_millis(30), "longest chain only");
        assert!((dag.parallelism() - 50.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn war_hazard_creates_an_edge() {
        let mut rec = DagRecorder::default();
        let a = BufferHandle(1);
        let b = BufferHandle(2);
        // write a; read a (compute into b); overwrite a.
        rec.record("w", Category::FileIo, SimDur::from_millis(5), &[], &[a]);
        rec.record(
            "c",
            Category::GpuCompute,
            SimDur::from_millis(9),
            &[a],
            &[b],
        );
        rec.record("w2", Category::FileIo, SimDur::from_millis(5), &[], &[a]);
        let dag = rec.snapshot();
        assert!(
            dag.edges.contains(&(1, 2)),
            "WAR edge reader->overwriter: {:?}",
            dag.edges
        );
        let (cp, _) = dag.critical_path();
        assert_eq!(cp, SimDur::from_millis(19));
    }

    #[test]
    fn waw_orders_writes() {
        let mut rec = DagRecorder::default();
        let a = BufferHandle(1);
        rec.record("w1", Category::FileIo, SimDur::from_millis(5), &[], &[a]);
        rec.record("w2", Category::FileIo, SimDur::from_millis(5), &[], &[a]);
        let dag = rec.snapshot();
        assert!(dag.edges.contains(&(0, 1)));
    }

    #[test]
    fn headroom_is_observed_over_critical_path() {
        let dag = node_dag(&[&[(10, 0)], &[(10, 1)], &[(10, 2)]]);
        // Critical path 10ms; a serial FIFO would take 30ms.
        assert!((dag.headroom(SimDur::from_millis(30)) - 3.0).abs() < 1e-9);
        assert_eq!(dag.headroom(SimDur::ZERO), 1.0);
    }

    #[test]
    fn dot_render_contains_nodes_and_edges() {
        let dag = node_dag(&[&[(1, 0), (2, 1)]]);
        let dot = dag.render_dot();
        assert!(dot.contains("t0"));
        assert!(dot.contains("t0 -> t1;"));
        assert!(dot.contains("lightcoral"), "critical path highlighted");
    }

    #[test]
    fn empty_dag_is_benign() {
        let dag = TaskDag::default();
        assert!(dag.is_empty());
        let (cp, path) = dag.critical_path();
        assert_eq!(cp, SimDur::ZERO);
        assert!(path.is_empty());
        assert_eq!(dag.parallelism(), 0.0);
    }
}
