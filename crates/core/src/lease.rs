//! Capacity leases: per-node byte budgets granted to one tenant.
//!
//! A multi-tenant scheduler (see `northup-sched`) admits a job against the
//! tree's per-node capacities and hands the job a [`CapacityLease`] for its
//! admitted reservation. Installing the lease on a [`Runtime`](crate::Runtime)
//! makes every `alloc` draw down the job's reservation on the buffer's node
//! and every `release` return it — so a job that under-declared its
//! footprint fails fast with [`NorthupError::LeaseExceeded`](crate::NorthupError)
//! instead of silently eating a co-tenant's memory.
//!
//! Nodes absent from the lease are unconstrained: a GEMM job that reserved
//! DRAM staging and device memory is not charged for its scratch files on
//! the storage root unless the scheduler chose to meter those too.

use crate::topology::NodeId;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A per-node byte budget granted to one job, with live usage accounting.
///
/// Cloning the `Arc` shares the accounting: the scheduler keeps one end to
/// observe usage, the runtime holds the other to charge it.
#[derive(Debug)]
pub struct CapacityLease {
    granted: BTreeMap<NodeId, u64>,
    used: Mutex<BTreeMap<NodeId, u64>>,
}

impl CapacityLease {
    /// A lease granting `bytes` on each listed node. Nodes not listed are
    /// unconstrained.
    pub fn new(granted: impl IntoIterator<Item = (NodeId, u64)>) -> Arc<Self> {
        Arc::new(CapacityLease {
            granted: granted.into_iter().collect(),
            used: Mutex::new(BTreeMap::new()),
        })
    }

    /// The granted budget on `node`, if this lease constrains it.
    pub fn granted(&self, node: NodeId) -> Option<u64> {
        self.granted.get(&node).copied()
    }

    /// Bytes currently charged against `node`.
    pub fn used(&self, node: NodeId) -> u64 {
        self.used.lock().get(&node).copied().unwrap_or(0)
    }

    /// Remaining budget on `node` (`None` when the node is unconstrained).
    pub fn remaining(&self, node: NodeId) -> Option<u64> {
        self.granted(node)
            .map(|g| g.saturating_sub(self.used(node)))
    }

    /// Nodes this lease constrains, with their grants, in id order.
    pub fn grants(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.granted.iter().map(|(&n, &b)| (n, b))
    }

    /// Charge `bytes` on `node`; on over-budget, nothing is charged and the
    /// remaining budget is returned as the error.
    pub(crate) fn try_charge(&self, node: NodeId, bytes: u64) -> Result<(), u64> {
        let Some(grant) = self.granted(node) else {
            return Ok(());
        };
        let mut used = self.used.lock();
        let u = used.entry(node).or_insert(0);
        let remaining = grant.saturating_sub(*u);
        if bytes > remaining {
            return Err(remaining);
        }
        *u += bytes;
        Ok(())
    }

    /// Return `bytes` on `node`. Credits for unconstrained or over-credited
    /// nodes are ignored (a buffer may outlive the lease that charged it).
    pub(crate) fn credit(&self, node: NodeId, bytes: u64) {
        if self.granted.contains_key(&node) {
            let mut used = self.used.lock();
            if let Some(u) = used.get_mut(&node) {
                *u = u.saturating_sub(bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_and_credits_tracked_per_node() {
        let lease = CapacityLease::new([(NodeId(1), 100), (NodeId(2), 50)]);
        assert_eq!(lease.try_charge(NodeId(1), 60), Ok(()));
        assert_eq!(lease.used(NodeId(1)), 60);
        assert_eq!(lease.remaining(NodeId(1)), Some(40));
        // Over-budget: rejected, nothing charged.
        assert_eq!(lease.try_charge(NodeId(1), 41), Err(40));
        assert_eq!(lease.used(NodeId(1)), 60);
        lease.credit(NodeId(1), 60);
        assert_eq!(lease.try_charge(NodeId(1), 100), Ok(()));
    }

    #[test]
    fn unlisted_nodes_are_unconstrained() {
        let lease = CapacityLease::new([(NodeId(1), 10)]);
        assert_eq!(lease.granted(NodeId(0)), None);
        assert_eq!(lease.remaining(NodeId(0)), None);
        assert_eq!(lease.try_charge(NodeId(0), u64::MAX), Ok(()));
        lease.credit(NodeId(0), 5);
        assert_eq!(lease.used(NodeId(0)), 0);
    }

    #[test]
    fn over_credit_saturates() {
        let lease = CapacityLease::new([(NodeId(3), 8)]);
        lease.try_charge(NodeId(3), 4).unwrap();
        lease.credit(NodeId(3), 100);
        assert_eq!(lease.used(NodeId(3)), 0);
        assert_eq!(lease.remaining(NodeId(3)), Some(8));
    }
}
